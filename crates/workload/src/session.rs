//! Sans-io driver session: the §III-E client policy as a state machine.
//!
//! [`DriverSession`] wraps one closed-loop [`Client`] with everything a
//! deployed driver needs beyond reply counting: the per-instance believed
//! coordinator (rotated when a candidate proves unresponsive or rejects),
//! reply age-out, the drain-to-fallback / probe-home-later dance of
//! Section III-E, and connection-level admission rejects (a saturated
//! replica turning the whole connection away, which must fail the session
//! over to another replica rather than hang it).
//!
//! The session is sans-io and clocked in caller-supplied milliseconds, so
//! the same policy drives three embeddings without divergence:
//!
//! * the thread-per-client driver in `rcc-network`'s cluster harness,
//! * the fan-out fleet driver multiplexing thousands of sessions over a
//!   few nonblocking I/O threads, and
//! * deterministic unit tests (no wall clock, no sockets).
//!
//! Protocol recap, mirrored from the paper: batches that draw no reply
//! within the reply timeout are abandoned and the instance's candidate
//! coordinator rotates (PBFT view rotation is `base + view mod n`, so
//! rotation finds the live coordinator). After enough consecutive age-out
//! rounds on the *home* instance the session drains to the neighbouring
//! instance — keeping the deployment's frontier moving, which is what trips
//! the replicas' σ-lag detection — and probes home periodically until the
//! replacement coordinator serves it again.

use crate::client::{Client, ClientMode, ReplyOutcome};
use rcc_common::{Batch, Digest, InstanceId, ReplicaId, SystemConfig, Time};
use rcc_telemetry::LocalHistogram;

/// Timing and failover knobs of a [`DriverSession`], in milliseconds of the
/// caller's clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionConfig {
    /// How long a submitted batch may go without a reply before the session
    /// abandons it and rotates coordinator candidates.
    pub reply_timeout_ms: u64,
    /// Consecutive age-out rounds on the home instance before the session
    /// drains to a fallback instance.
    pub home_failures_before_drain: u32,
    /// While drained, how often the home instance is probed again.
    pub home_probe_interval_ms: u64,
    /// Pause after an explicit reject before refilling the window, so a
    /// misrouted burst cannot hot-spin against a rejecting replica.
    pub reject_pause_ms: u64,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            reply_timeout_ms: 700,
            home_failures_before_drain: 2,
            home_probe_interval_ms: 1_500,
            reject_pause_ms: 10,
        }
    }
}

/// One batch the session wants on the wire: hand it to `candidate`, tagged
/// for `instance`. The digest identifies the batch in later callbacks.
#[derive(Clone, Debug)]
pub struct SubmitAction {
    /// The replica believed to coordinate the batch's instance.
    pub candidate: ReplicaId,
    /// The instance the batch is assigned to.
    pub instance: InstanceId,
    /// Digest identifying the batch in replies and rejects.
    pub digest: Digest,
    /// The assembled batch payload.
    pub batch: Batch,
}

/// Final statistics of a session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// The workload stream the session drove.
    pub stream: u64,
    /// Batches submitted (completed + abandoned + still in flight).
    pub submitted: u64,
    /// Batches that collected their `f + 1` matching replies.
    pub completed: u64,
    /// Batches abandoned (reply timeout, explicit reject, or failover).
    pub abandoned: u64,
    /// Median submit-to-quorum latency over completed batches, in
    /// milliseconds of the session clock. Zero when nothing completed.
    pub p50_latency_ms: u64,
    /// 99th-percentile submit-to-quorum latency, in milliseconds. With
    /// fewer than 100 completions this is the slowest observed batch.
    pub p99_latency_ms: u64,
}

/// In-flight bookkeeping: where a batch went, when, and whether the
/// coordinator acknowledged accepting it.
#[derive(Clone, Copy, Debug)]
struct PendingBatch {
    instance: InstanceId,
    candidate: ReplicaId,
    at_ms: u64,
    acked: bool,
}

/// One closed-loop client session with §III-E failover, sans-io.
///
/// Drive it with [`DriverSession::poll`] (returns the batches to submit)
/// and feed network events back through the `on_*` callbacks. The caller
/// owns authentication: tags are applied when encoding a [`SubmitAction`]
/// and verified before calling [`DriverSession::on_reply`].
#[derive(Clone, Debug)]
pub struct DriverSession {
    client: Client,
    config: SessionConfig,
    n: usize,
    m: u32,
    home: InstanceId,
    active: InstanceId,
    /// Per-instance believed coordinator.
    candidates: Vec<ReplicaId>,
    pending: Vec<(Digest, PendingBatch)>,
    home_failures: u32,
    next_home_probe_ms: u64,
    paused_until_ms: u64,
    abandoned: u64,
    /// Submit-to-quorum latency of every completed batch, in session-clock
    /// milliseconds. Log-scale buckets, so a long-lived session stays O(1).
    latency_ms: LocalHistogram,
}

impl DriverSession {
    /// Creates a session driving workload stream `stream`, homed on
    /// `home`, with a closed-loop window of `window` batches.
    pub fn new(
        system: &SystemConfig,
        stream: u64,
        home: InstanceId,
        window: usize,
        config: SessionConfig,
    ) -> DriverSession {
        let m = system.instances.max(1) as u32;
        DriverSession {
            client: Client::new(
                system.seed,
                stream,
                system.batch_size,
                system.client_reply_quorum(),
                ClientMode::Closed { window },
            ),
            config,
            n: system.n,
            m,
            home,
            active: home,
            candidates: (0..m).map(|i| InstanceId(i).primary()).collect(),
            pending: Vec::new(),
            home_failures: 0,
            next_home_probe_ms: 0,
            paused_until_ms: 0,
            abandoned: 0,
            latency_ms: LocalHistogram::default(),
        }
    }

    /// The workload stream this session drives.
    pub fn stream(&self) -> u64 {
        self.client.stream()
    }

    /// The replica currently believed to coordinate the active instance —
    /// where the next submission will go. Lets an embedding keep only the
    /// relevant connections open.
    pub fn active_candidate(&self) -> ReplicaId {
        self.candidates[self.active.index()]
    }

    /// Batches currently awaiting their reply quorum.
    pub fn in_flight(&self) -> usize {
        self.client.in_flight()
    }

    /// Advances the session clock to `now_ms`: ages out silent batches,
    /// applies drain/probe transitions, and returns the submissions that
    /// fill the freed window. Call regularly (at least once per reply
    /// timeout) and put every returned action on the wire.
    pub fn poll(&mut self, now_ms: u64) -> Vec<SubmitAction> {
        // Drained sessions periodically try their home instance again.
        if self.active != self.home && now_ms >= self.next_home_probe_ms {
            self.active = self.home;
        }
        self.age_out(now_ms);
        let mut actions = Vec::new();
        if now_ms < self.paused_until_ms {
            return actions;
        }
        while self.client.ready(Time::ZERO) {
            let (digest, batch) = self.client.submit(Time::ZERO);
            let candidate = self.candidates[self.active.index()];
            self.pending.push((
                digest,
                PendingBatch {
                    instance: self.active,
                    candidate,
                    at_ms: now_ms,
                    acked: false,
                },
            ));
            actions.push(SubmitAction {
                candidate,
                instance: self.active,
                digest,
                batch,
            });
        }
        actions
    }

    /// Records a *verified* reply from `from` reporting outcome `digest`,
    /// received at `now_ms` of the session clock. The caller must have
    /// checked the frame's tag against the deployment keys first. Returns
    /// what the reply contributed. A completing reply records the batch's
    /// submit-to-quorum latency.
    pub fn on_reply(&mut self, now_ms: u64, from: ReplicaId, digest: Digest) -> ReplyOutcome {
        let outcome = self.client.on_reply(from, digest);
        if outcome == ReplyOutcome::Completed {
            if let Some((_, entry)) = self.pending.iter().find(|(d, _)| *d == digest) {
                self.latency_ms.record(now_ms.saturating_sub(entry.at_ms));
            }
            self.pending.retain(|(d, _)| *d != digest);
            if self.active == self.home {
                self.home_failures = 0;
            }
        }
        outcome
    }

    /// The submit-to-quorum latency distribution of this session's
    /// completed batches, for merging into a shared registry histogram.
    pub fn latency_histogram(&self) -> &LocalHistogram {
        &self.latency_ms
    }

    /// Records a coordinator's acceptance ack for `digest`: the candidate is
    /// alive, so a later age-out frees the slot without rotating away from
    /// it.
    pub fn on_accept(&mut self, digest: Digest) {
        if let Some((_, entry)) = self.pending.iter_mut().find(|(d, _)| *d == digest) {
            entry.acked = true;
        }
    }

    /// Records an explicit per-batch reject ("not my instance / no
    /// capacity") from `replica`: frees the slot, rotates the candidate if
    /// it was the rejecting replica, and pauses resubmission briefly.
    ///
    /// A rejected *home* batch also counts toward the drain threshold:
    /// rejects abandon batches before they can age out, so without this a
    /// session whose home instance turns everything away (e.g. its
    /// coordinator is behind an admission cap) would rotate candidates
    /// forever instead of draining to an instance that serves it.
    pub fn on_reject(&mut self, now_ms: u64, replica: ReplicaId, digest: Digest) {
        if let Some(index) = self.pending.iter().position(|(d, _)| *d == digest) {
            let (_, entry) = self.pending.remove(index);
            self.client.forget(&digest);
            self.abandoned += 1;
            if entry.candidate == replica {
                self.rotate(entry.instance, replica);
            }
            if entry.instance == self.home {
                self.home_strike(now_ms);
            }
            self.paused_until_ms = now_ms + self.config.reject_pause_ms;
        }
    }

    /// Records a connection-level refusal from `replica`: the connection was
    /// turned away at admission (the edge's zero-digest [`ClientReject`
    /// sentinel]), refused outright, or dropped. Every batch routed there is
    /// abandoned and every instance that believed in `replica` rotates to
    /// the next candidate, so the session fails over instead of hanging.
    ///
    /// [`ClientReject` sentinel]: SessionConfig
    pub fn on_connection_refused(&mut self, now_ms: u64, replica: ReplicaId) {
        // Losing the home instance's believed coordinator — or any home
        // batch routed through the refused replica — is one strike toward
        // draining, for the same reason as in [`DriverSession::on_reject`].
        let mut home_hit = self.candidates.get(self.home.index()).copied() == Some(replica);
        let mut index = 0;
        while index < self.pending.len() {
            if self.pending[index].1.candidate != replica {
                index += 1;
                continue;
            }
            let (digest, entry) = self.pending.remove(index);
            self.client.forget(&digest);
            self.abandoned += 1;
            home_hit |= entry.instance == self.home;
            self.rotate(entry.instance, replica);
        }
        for instance in 0..self.m {
            self.rotate(InstanceId(instance), replica);
        }
        if home_hit {
            self.home_strike(now_ms);
        }
        self.paused_until_ms = now_ms + self.config.reject_pause_ms;
    }

    /// Final statistics. `Client::forget` nets rejected batches out of its
    /// submitted counter; the abandonments are added back so the reported
    /// total is actual submissions.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            stream: self.client.stream(),
            submitted: self.client.submitted_batches() + self.abandoned,
            completed: self.client.completed_batches(),
            abandoned: self.abandoned,
            p50_latency_ms: self.latency_ms.percentile(0.50),
            p99_latency_ms: self.latency_ms.percentile(0.99),
        }
    }

    /// One failure of the home instance (silent age-out, explicit reject,
    /// or connection refusal). At the configured threshold the session
    /// drains to the neighbouring instance and schedules a home probe.
    fn home_strike(&mut self, now_ms: u64) {
        if self.active != self.home || self.m <= 1 {
            return;
        }
        self.home_failures += 1;
        if self.home_failures >= self.config.home_failures_before_drain.max(1) {
            self.active = InstanceId((self.home.0 + 1) % self.m);
            self.next_home_probe_ms = now_ms + self.config.home_probe_interval_ms;
            self.home_failures = 0;
        }
    }

    /// Rotates the believed coordinator of `instance` past `from` — only
    /// when `from` is still current, so stale verdicts about an already-
    /// replaced candidate cannot skip past the coordinator the rotation
    /// just found.
    fn rotate(&mut self, instance: InstanceId, from: ReplicaId) {
        let index = instance.index();
        if index < self.candidates.len() && self.candidates[index] == from {
            self.candidates[index] = ReplicaId((from.0 + 1) % self.n as u32);
        }
    }

    /// Ages out batches that drew neither reply nor ack within the reply
    /// timeout. An *acked* aged batch means a live coordinator with stalled
    /// releases: free the slot but keep the candidate. A never-acked batch
    /// means the candidate is dead or unreachable: rotate. Enough home
    /// age-outs in a row drain the session to the neighbouring instance.
    fn age_out(&mut self, now_ms: u64) {
        let mut home_aged = false;
        let mut index = 0;
        while index < self.pending.len() {
            let entry = self.pending[index].1;
            if now_ms.saturating_sub(entry.at_ms) <= self.config.reply_timeout_ms {
                index += 1;
                continue;
            }
            let (digest, entry) = self.pending.remove(index);
            self.client.forget(&digest);
            self.abandoned += 1;
            if !entry.acked {
                self.rotate(entry.instance, entry.candidate);
            }
            if entry.instance == self.home {
                home_aged = true;
            }
        }
        if home_aged {
            self.home_strike(now_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> SystemConfig {
        SystemConfig::new(4).with_instances(2)
    }

    fn session(window: usize) -> DriverSession {
        DriverSession::new(
            &system(),
            0,
            InstanceId(0),
            window,
            SessionConfig::default(),
        )
    }

    #[test]
    fn poll_fills_the_window_toward_the_home_primary() {
        let mut s = session(3);
        let actions = s.poll(0);
        assert_eq!(actions.len(), 3);
        for action in &actions {
            assert_eq!(action.instance, InstanceId(0));
            assert_eq!(action.candidate, InstanceId(0).primary());
        }
        assert!(s.poll(1).is_empty(), "window is full");
    }

    #[test]
    fn quorum_replies_complete_batches_and_free_the_window() {
        let mut s = session(1);
        let actions = s.poll(0);
        let digest = actions[0].digest;
        assert_eq!(s.on_reply(3, ReplicaId(0), digest), ReplyOutcome::Pending);
        assert_eq!(s.on_reply(7, ReplicaId(1), digest), ReplyOutcome::Completed);
        assert_eq!(s.stats().completed, 1);
        assert_eq!(s.poll(8).len(), 1, "completed batch freed its slot");
    }

    #[test]
    fn completed_batches_record_submit_to_quorum_latency() {
        let mut s = session(1);
        // First batch: submitted at 0, quorum at 7 → 7 ms.
        let digest = s.poll(0)[0].digest;
        s.on_reply(3, ReplicaId(0), digest);
        s.on_reply(7, ReplicaId(1), digest);
        // Second batch: submitted at 10, quorum at 15 → 5 ms.
        let digest = s.poll(10)[0].digest;
        s.on_reply(12, ReplicaId(0), digest);
        s.on_reply(15, ReplicaId(1), digest);
        let stats = s.stats();
        assert_eq!(stats.p50_latency_ms, 5);
        assert_eq!(stats.p99_latency_ms, 7);
        assert_eq!(s.latency_histogram().count(), 2);
    }

    #[test]
    fn sessions_without_completions_report_zero_latency() {
        let s = session(1);
        let stats = s.stats();
        assert_eq!(stats.p50_latency_ms, 0);
        assert_eq!(stats.p99_latency_ms, 0);
        assert!(s.latency_histogram().is_empty());
    }

    #[test]
    fn unanswered_batches_age_out_and_rotate_the_candidate() {
        let mut s = session(1);
        let first = s.poll(0);
        assert_eq!(first[0].candidate, ReplicaId(0));
        let timeout = SessionConfig::default().reply_timeout_ms;
        let again = s.poll(timeout + 1);
        assert_eq!(again.len(), 1, "aged batch freed its slot");
        assert_eq!(
            again[0].candidate,
            ReplicaId(1),
            "never-acked age-out rotates past the dead candidate"
        );
        assert_eq!(s.stats().abandoned, 1);
    }

    #[test]
    fn acked_batches_age_out_without_rotating() {
        let mut s = session(1);
        let first = s.poll(0);
        s.on_accept(first[0].digest);
        let timeout = SessionConfig::default().reply_timeout_ms;
        let again = s.poll(timeout + 1);
        assert_eq!(
            again[0].candidate,
            ReplicaId(0),
            "an acked candidate is alive; keep it"
        );
    }

    #[test]
    fn repeated_home_age_outs_drain_to_the_neighbour_and_probe_back() {
        let config = SessionConfig::default();
        let mut s = session(1);
        let mut now = 0;
        // Two consecutive silent rounds on home drain the session.
        for _ in 0..config.home_failures_before_drain {
            let actions = s.poll(now);
            assert_eq!(actions[0].instance, InstanceId(0));
            now += config.reply_timeout_ms + 1;
        }
        let drained = s.poll(now);
        assert_eq!(
            drained[0].instance,
            InstanceId(1),
            "drained to the neighbouring instance"
        );
        // After the probe interval the session tries home again.
        now += config.home_probe_interval_ms + config.reply_timeout_ms + 1;
        let probed = s.poll(now);
        assert_eq!(probed[0].instance, InstanceId(0), "probed home");
    }

    #[test]
    fn an_explicit_reject_frees_the_slot_rotates_and_pauses() {
        let config = SessionConfig::default();
        let mut s = session(1);
        let actions = s.poll(0);
        s.on_reject(0, ReplicaId(0), actions[0].digest);
        assert!(
            s.poll(config.reject_pause_ms - 1).is_empty(),
            "paused after a reject"
        );
        let retried = s.poll(config.reject_pause_ms);
        assert_eq!(retried.len(), 1);
        assert_eq!(
            retried[0].candidate,
            ReplicaId(1),
            "rotated off the rejector"
        );
    }

    #[test]
    fn a_connection_refusal_fails_the_session_over() {
        let config = SessionConfig::default();
        let mut s = session(2);
        let actions = s.poll(0);
        assert!(actions.iter().all(|a| a.candidate == ReplicaId(0)));
        s.on_connection_refused(0, ReplicaId(0));
        assert_eq!(s.stats().abandoned, 2, "in-flight batches abandoned");
        let retried = s.poll(config.reject_pause_ms);
        assert_eq!(retried.len(), 2);
        assert!(
            retried.iter().all(|a| a.candidate == ReplicaId(1)),
            "every instance rotated off the refused replica"
        );
    }

    #[test]
    fn repeated_home_rejects_drain_like_age_outs() {
        // A home instance that explicitly turns every batch away (its
        // coordinator is saturated or misrouted) must drain the session
        // just like silent timeouts would — rejects abandon batches before
        // they can age out, so they count toward the same threshold.
        let config = SessionConfig::default();
        let mut s = session(1);
        let mut now = 0;
        for _ in 0..config.home_failures_before_drain {
            let actions = s.poll(now);
            assert_eq!(actions[0].instance, InstanceId(0));
            now += config.reject_pause_ms + 1;
            s.on_reject(now, actions[0].candidate, actions[0].digest);
            now += config.reject_pause_ms + 1;
        }
        let drained = s.poll(now);
        assert_eq!(
            drained[0].instance,
            InstanceId(1),
            "rejected-out home drained to the neighbouring instance"
        );
    }

    #[test]
    fn a_connection_refusal_of_the_home_coordinator_counts_toward_draining() {
        let config = SessionConfig::default();
        let mut s = session(1);
        let mut now = 0;
        for _ in 0..config.home_failures_before_drain {
            let _ = s.poll(now);
            now += config.reject_pause_ms + 1;
            // Refuse whichever replica currently fronts the home instance.
            s.on_connection_refused(now, s.active_candidate());
            now += config.reject_pause_ms + 1;
        }
        let drained = s.poll(now);
        assert_eq!(
            drained[0].instance,
            InstanceId(1),
            "refusals drained the session"
        );
    }

    #[test]
    fn stale_verdicts_do_not_skip_the_rotation() {
        // Single instance so the drain transition cannot redirect the
        // session mid-test; only candidate rotation is in play.
        let mut s = DriverSession::new(
            &SystemConfig::new(4).with_instances(1),
            0,
            InstanceId(0),
            1,
            SessionConfig::default(),
        );
        let first = s.poll(0);
        let timeout = SessionConfig::default().reply_timeout_ms;
        // Age out rotates 0 → 1.
        let second = s.poll(timeout + 1);
        assert_eq!(second[0].candidate, ReplicaId(1));
        // A late reject blaming replica 0 must not advance 1 → anything.
        s.on_reject(timeout + 2, ReplicaId(0), first[0].digest);
        let third = s.poll(2 * (timeout + 1) + 20);
        assert_eq!(third[0].candidate, ReplicaId(2), "only the age-out rotated");
    }
}
