//! Open-loop and closed-loop client models.
//!
//! A [`Client`] is one client node: a group of co-located clients sharing a
//! [`YcsbGenerator`] stream and submitting pre-assembled
//! batches to the coordinator of their assigned consensus instance. Two
//! standard arrival models are supported:
//!
//! * **Closed loop** — at most `window` batches in flight; a new batch may be
//!   submitted only after an outstanding one completes. A batch completes
//!   when `f + 1` *matching* replies (same digest, distinct replicas) have
//!   arrived — the smallest number that guarantees at least one reply came
//!   from a non-faulty replica, so fewer (or conflicting) replies from
//!   Byzantine replicas never convince the client. This is the paper's
//!   saturated-measurement client.
//! * **Open loop** — batches are submitted at a fixed interval regardless of
//!   replies (arrival rate decoupled from service rate), which is what
//!   exposes queueing collapse under overload.
//!
//! Clients are deterministic: no wall clock, no randomness beyond the seeded
//! generator, so a simulation embedding them stays bit-reproducible.

use crate::ycsb::YcsbGenerator;
use rcc_common::{Batch, Digest, Duration, ReplicaId, Time};
use rcc_crypto::hash::digest_batch;
use std::collections::{BTreeMap, BTreeSet};

/// The arrival model of a client node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ClientMode {
    /// Closed loop: at most `window` batches in flight, submission unblocked
    /// by completed replies.
    Closed {
        /// Maximum batches in flight.
        window: usize,
    },
    /// Open loop: one batch every `interval` of virtual time, independent of
    /// replies.
    Open {
        /// Time between submissions.
        interval: Duration,
    },
}

/// What a reply contributed to the client's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyOutcome {
    /// The reply references no batch this client is waiting on (a stale,
    /// duplicate, or fabricated digest) and was ignored.
    Unknown,
    /// The reply was counted; the batch still needs more matching replies.
    Pending,
    /// The reply completed the `f + 1` matching quorum; the batch is done.
    Completed,
}

/// One client node: a seeded workload stream plus reply tracking.
#[derive(Clone, Debug)]
pub struct Client {
    generator: YcsbGenerator,
    stream: u64,
    mode: ClientMode,
    reply_quorum: usize,
    /// Outstanding batches: digest → replicas whose replies matched it.
    pending: BTreeMap<Digest, BTreeSet<ReplicaId>>,
    next_open_submission: Time,
    submitted: u64,
    completed: u64,
    abandoned: u64,
}

impl Client {
    /// Creates a client node over workload stream `stream` of the run seeded
    /// with `seed`. `reply_quorum` is the number of matching replies required
    /// to accept an outcome (`f + 1` in a deployment tolerating `f` faults).
    pub fn new(
        seed: u64,
        stream: u64,
        batch_size: usize,
        reply_quorum: usize,
        mode: ClientMode,
    ) -> Self {
        Client {
            generator: YcsbGenerator::new(seed, stream, batch_size),
            stream,
            mode,
            reply_quorum: reply_quorum.max(1),
            pending: BTreeMap::new(),
            next_open_submission: Time::ZERO,
            submitted: 0,
            completed: 0,
            abandoned: 0,
        }
    }

    /// The client's arrival model.
    pub fn mode(&self) -> ClientMode {
        self.mode
    }

    /// The workload stream this client node draws from. Deployed clients
    /// identify themselves to replicas as `ClientId(stream)`; replicas
    /// recover the same value from a batch's requests via
    /// [`crate::ycsb::stream_of_client`] to route replies.
    pub fn stream(&self) -> u64 {
        self.stream
    }

    /// `true` when the client may submit a batch at `now`.
    pub fn ready(&self, now: Time) -> bool {
        match self.mode {
            ClientMode::Closed { window } => self.pending.len() < window.max(1),
            ClientMode::Open { .. } => now >= self.next_open_submission,
        }
    }

    /// When the client next becomes ready by the *clock* alone: open-loop
    /// clients return their next scheduled submission; closed-loop clients
    /// return `None` (they are unblocked by replies, not by time).
    pub fn next_ready_at(&self) -> Option<Time> {
        match self.mode {
            ClientMode::Closed { .. } => None,
            ClientMode::Open { .. } => Some(self.next_open_submission),
        }
    }

    /// Assembles and registers the next batch. The returned digest identifies
    /// the batch in subsequent [`Client::on_reply`] calls.
    ///
    /// Call only when [`Client::ready`]; the caller then hands the batch to
    /// the coordinator of the client's assigned instance (and calls
    /// [`Client::forget`] if the coordinator turned it away).
    pub fn submit(&mut self, now: Time) -> (Digest, Batch) {
        let batch = self.generator.next_batch();
        let digest = digest_batch(&batch);
        self.pending.insert(digest, BTreeSet::new());
        self.submitted += 1;
        if let ClientMode::Open { interval } = self.mode {
            self.next_open_submission = self.next_open_submission.max(now) + interval;
        }
        (digest, batch)
    }

    /// Unregisters a batch the coordinator did not accept (no capacity, not
    /// the primary any more). The client will regenerate fresh work later —
    /// rejected batches are not replayed.
    pub fn forget(&mut self, digest: &Digest) {
        if self.pending.remove(digest).is_some() {
            self.submitted = self.submitted.saturating_sub(1);
        }
    }

    /// Records a reply from `from` reporting outcome digest `digest`.
    /// Replies only count toward the matching quorum once per replica, so a
    /// Byzantine replica cannot complete a batch by repeating itself.
    pub fn on_reply(&mut self, from: ReplicaId, digest: Digest) -> ReplyOutcome {
        let Some(replicas) = self.pending.get_mut(&digest) else {
            return ReplyOutcome::Unknown;
        };
        replicas.insert(from);
        if replicas.len() >= self.reply_quorum {
            self.pending.remove(&digest);
            self.completed += 1;
            ReplyOutcome::Completed
        } else {
            ReplyOutcome::Pending
        }
    }

    /// Drops every outstanding batch, e.g. when the client hands off to a
    /// different instance and will not wait for replies routed through the
    /// old coordinator. Returns how many batches were abandoned.
    pub fn abandon_inflight(&mut self) -> usize {
        let dropped = self.pending.len();
        self.abandoned += dropped as u64;
        self.pending.clear();
        dropped
    }

    /// Batches currently awaiting their reply quorum.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Batches submitted over the client's lifetime (net of rejections).
    pub fn submitted_batches(&self) -> u64 {
        self.submitted
    }

    /// Batches that reached the matching-reply quorum.
    pub fn completed_batches(&self) -> u64 {
        self.completed
    }

    /// Batches abandoned by [`Client::abandon_inflight`].
    pub fn abandoned_batches(&self) -> u64 {
        self.abandoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed(window: usize) -> Client {
        Client::new(7, 0, 10, 2, ClientMode::Closed { window })
    }

    #[test]
    fn closed_loop_blocks_at_the_window_and_unblocks_on_quorum() {
        let mut c = closed(2);
        let now = Time::ZERO;
        assert!(c.ready(now));
        let (d0, _) = c.submit(now);
        let (_d1, _) = c.submit(now);
        assert!(!c.ready(now), "window of 2 is full");
        // One matching reply is not enough for quorum 2.
        assert_eq!(c.on_reply(ReplicaId(0), d0), ReplyOutcome::Pending);
        assert!(!c.ready(now));
        // The second distinct replica completes the batch.
        assert_eq!(c.on_reply(ReplicaId(1), d0), ReplyOutcome::Completed);
        assert!(c.ready(now));
        assert_eq!(c.completed_batches(), 1);
        assert_eq!(c.in_flight(), 1);
    }

    #[test]
    fn repeated_replies_from_one_replica_do_not_reach_quorum() {
        let mut c = closed(1);
        let (d, _) = c.submit(Time::ZERO);
        for _ in 0..10 {
            assert_eq!(c.on_reply(ReplicaId(3), d), ReplyOutcome::Pending);
        }
        assert_eq!(c.completed_batches(), 0, "one replica is below f + 1");
    }

    #[test]
    fn mismatched_digests_are_not_counted() {
        let mut c = closed(1);
        let (_d, _) = c.submit(Time::ZERO);
        let forged = Digest::from_bytes([9u8; 32]);
        assert_eq!(c.on_reply(ReplicaId(0), forged), ReplyOutcome::Unknown);
        assert_eq!(c.in_flight(), 1);
    }

    #[test]
    fn open_loop_is_paced_by_the_clock_not_by_replies() {
        let interval = Duration::from_millis(10);
        let mut c = Client::new(7, 0, 10, 2, ClientMode::Open { interval });
        let t0 = Time::ZERO;
        assert!(c.ready(t0));
        c.submit(t0);
        assert!(!c.ready(t0), "next slot is one interval away");
        assert_eq!(c.next_ready_at(), Some(t0 + interval));
        assert!(c.ready(t0 + interval));
        c.submit(t0 + interval);
        // No replies arrived, yet the client keeps submitting on schedule.
        assert_eq!(c.in_flight(), 2);
        assert!(c.ready(t0 + interval + interval));
    }

    #[test]
    fn forget_and_abandon_release_window_slots() {
        let mut c = closed(1);
        let (d, _) = c.submit(Time::ZERO);
        assert!(!c.ready(Time::ZERO));
        c.forget(&d);
        assert!(c.ready(Time::ZERO), "rejected batches free their slot");
        let (_d, _) = c.submit(Time::ZERO);
        assert_eq!(c.abandon_inflight(), 1);
        assert_eq!(c.abandoned_batches(), 1);
        assert!(c.ready(Time::ZERO));
    }

    #[test]
    fn submissions_are_deterministic_per_seed_and_stream() {
        let mut a = closed(4);
        let mut b = closed(4);
        for _ in 0..3 {
            let (da, ba) = a.submit(Time::ZERO);
            let (db, bb) = b.submit(Time::ZERO);
            assert_eq!(da, db);
            assert_eq!(ba, bb);
        }
    }
}
