//! Workload generation — **placeholder, not yet implemented**.
//!
//! Intended scope: the client side of the paper's experiments (Section V-A):
//!
//! * the YCSB-style workload of the Blockbench macro benchmark — half a
//!   million 1 KB records, 90 % write transactions, 512 B client
//!   transactions — generated deterministically from
//!   [`rcc_common::SystemConfig::seed`];
//! * the bank-transfer workload behind the ordering-attack discussion of
//!   Section IV (Example IV.1);
//! * client models: open-loop arrival rates and closed-loop clients waiting
//!   for `f + 1` matching replies, plus the client-to-instance assignment
//!   policy with `σ`-spaced hand-offs (Section III-E);
//! * batch assembly into [`rcc_common::Batch`]es of
//!   [`rcc_common::SystemConfig::batch_size`] transactions.
//!
//! A first deterministic YCSB-style generator (90 % writes, seeded per
//! proposer) currently lives in `rcc_sim::workload`, where the simulator's
//! saturated clients consume it; open-loop/closed-loop client models and the
//! σ-spaced instance-assignment policy belong here when implemented.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
