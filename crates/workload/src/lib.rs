//! The client side of an RCC deployment: workload generation, client models,
//! and the Section III-E client-to-instance assignment policy.
//!
//! * [`ycsb`] — the deterministic YCSB-style generator of the Blockbench
//!   macro benchmark the paper evaluates with (Section V-A): a 500 k-record
//!   key space, 90 % writes, batches of
//!   [`rcc_common::SystemConfig::batch_size`] transactions, seeded per
//!   workload stream so runs are bit-reproducible.
//! * [`client`] — client nodes: **closed-loop** clients that keep at most a
//!   window of batches in flight and wait for `f + 1` *matching* replies per
//!   batch, and **open-loop** clients that submit on a fixed interval
//!   regardless of replies.
//! * [`session`] — the deployed-driver face of the same policy: a sans-io
//!   [`DriverSession`] that wraps one closed-loop client with candidate
//!   rotation, reply age-out, drain/probe failover, and connection-level
//!   admission rejects, clocked in caller-supplied milliseconds so the
//!   thread-per-client harness and the multiplexed fleet driver in
//!   `rcc-network` share one policy.
//! * [`assignment`] — the [`InstanceAssignment`] policy: each client is homed
//!   on one consensus instance, drains off it when the instance enters a view
//!   change, and hands back only after the replacement coordinator has
//!   demonstrated σ rounds of progress (the paper's σ-spaced hand-offs,
//!   Section III-E). This is what restores throughput after a coordinator
//!   crash instead of leaving the recovered instance on catch-up no-ops
//!   forever.
//!
//! The crate is sans-io and deterministic: replicas expose
//! [`rcc_common::InstanceStatus`] observations, the policy maps clients to
//! instances, and the embedding — the discrete-event simulator in
//! `rcc-sim`, or the deployed client drivers in `rcc-network` — moves the
//! batches. Deployed clients identify as `ClientId(stream)`; replicas
//! recover the stream from a batch's requests via [`stream_of_client`] to
//! route replies.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assignment;
pub mod client;
pub mod session;
pub mod ycsb;

pub use assignment::{Handoff, InstanceAssignment};
pub use client::{Client, ClientMode, ReplyOutcome};
pub use session::{DriverSession, SessionConfig, SessionStats, SubmitAction};
pub use ycsb::{stream_of_client, YcsbGenerator};
