//! The Section III-E client-to-instance assignment policy with σ-spaced
//! hand-offs.
//!
//! RCC recovers *safety* from a failed coordinator with an instance-local
//! view change, but throughput only recovers when client load follows: a
//! recovered instance whose clients never return runs on catch-up no-ops
//! forever, throttling the whole deployment to the no-op cadence (exactly the
//! post-recovery collapse the `faults` campaign measured before this policy
//! existed). [`InstanceAssignment`] closes that gap:
//!
//! * every client has a **home instance** (`client mod m`), the instance it
//!   serves under failure-free operation;
//! * when an instance **enters a view change** its clients drain off to the
//!   least-loaded healthy instance — submissions would be dropped anyway;
//! * clients **hand off back** to an instance only after its (new)
//!   coordinator has *demonstrated* `σ` rounds of committed progress in its
//!   current view ([`InstanceStatus::progress_in_view`]). This is the paper's
//!   σ-spaced hand-off: a flapping coordinator that keeps losing views never
//!   re-attracts load, because every view change resets the progress count
//!   and restarts the σ clock.
//!
//! The policy is a pure function of the observed [`InstanceStatus`]es, so it
//! is deterministic and can run at every client (or, in the simulator, once
//! globally) without coordination.

use rcc_common::{InstanceId, InstanceStatus};

/// One executed client migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Handoff {
    /// Index of the migrating client.
    pub client: usize,
    /// The instance the client was assigned to.
    pub from: InstanceId,
    /// The instance the client is assigned to now.
    pub to: InstanceId,
}

/// The client-to-instance assignment of a deployment.
#[derive(Clone, Debug)]
pub struct InstanceAssignment {
    sigma: u64,
    home: Vec<InstanceId>,
    assigned: Vec<InstanceId>,
}

impl InstanceAssignment {
    /// Creates the initial assignment of `clients` client nodes over
    /// `instances` instances: client `c` is homed on (and assigned to)
    /// instance `c mod instances`. `sigma` is the hand-off spacing — the
    /// rounds of demonstrated progress required before load returns to a
    /// recovered instance (the deployment's lag bound σ).
    ///
    /// # Panics
    ///
    /// Panics when `instances` is zero.
    pub fn new(clients: usize, instances: usize, sigma: u64) -> Self {
        assert!(instances > 0, "a deployment needs at least one instance");
        let home: Vec<InstanceId> = (0..clients)
            .map(|c| InstanceId((c % instances) as u32))
            .collect();
        InstanceAssignment {
            sigma,
            assigned: home.clone(),
            home,
        }
    }

    /// Number of client nodes managed.
    pub fn client_count(&self) -> usize {
        self.assigned.len()
    }

    /// The instance `client` is currently assigned to.
    pub fn assignment(&self, client: usize) -> InstanceId {
        self.assigned[client]
    }

    /// All current assignments, indexed by client.
    pub fn assignments(&self) -> &[InstanceId] {
        &self.assigned
    }

    /// `true` when every client is assigned to its home instance. While this
    /// holds, [`InstanceAssignment::update`] can only move a client in
    /// response to a view-change transition (an instance turning
    /// ineligible), never to progress alone — embeddings use this to skip
    /// polling updates between failure-handling events.
    pub fn fully_home(&self) -> bool {
        self.assigned == self.home
    }

    /// Whether `status` describes an instance that may carry client load: it
    /// is not mid view change, and a replacement coordinator (any view > 0)
    /// has demonstrated at least σ rounds of progress in its view.
    pub fn eligible(&self, status: &InstanceStatus) -> bool {
        !status.in_view_change && (status.view == 0 || status.progress_in_view >= self.sigma)
    }

    /// Applies the policy against the latest observations (`statuses[i]` must
    /// describe instance `i`) and returns the hand-offs performed.
    ///
    /// A client moves only when it has somewhere better to be: back to its
    /// home instance the moment the home is eligible again, or off an
    /// ineligible instance to the least-loaded eligible one (ties broken by
    /// lowest instance id). With no eligible instance at all — e.g. a
    /// single-instance deployment mid view change — clients stay put, so the
    /// deployment can never strand its entire load.
    pub fn update(&mut self, statuses: &[InstanceStatus]) -> Vec<Handoff> {
        let m = statuses.len();
        debug_assert!(statuses
            .iter()
            .enumerate()
            .all(|(i, s)| s.instance.index() == i));
        let eligible: Vec<bool> = statuses.iter().map(|s| self.eligible(s)).collect();
        let mut load = vec![0usize; m];
        for assigned in &self.assigned {
            load[assigned.index()] += 1;
        }
        let mut handoffs = Vec::new();
        for client in 0..self.assigned.len() {
            let current = self.assigned[client];
            let home = self.home[client];
            let target = if current != home && eligible[home.index()] {
                // σ-spaced hand-off back to the recovered home instance.
                Some(home)
            } else if !eligible[current.index()] {
                // Drain off a failed/recovering instance to the least-loaded
                // eligible one.
                (0..m)
                    .filter(|&i| eligible[i] && i != current.index())
                    .min_by_key(|&i| (load[i], i))
                    .map(|i| InstanceId(i as u32))
            } else {
                None
            };
            if let Some(to) = target {
                if to != current {
                    load[current.index()] -= 1;
                    load[to.index()] += 1;
                    self.assigned[client] = to;
                    handoffs.push(Handoff {
                        client,
                        from: current,
                        to,
                    });
                }
            }
        }
        handoffs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{ReplicaId, View};

    fn status(instance: u32, view: View, in_view_change: bool, progress: u64) -> InstanceStatus {
        InstanceStatus {
            instance: InstanceId(instance),
            coordinator: ReplicaId(instance + view as u32),
            view,
            in_view_change,
            progress_in_view: progress,
        }
    }

    fn healthy(m: u32) -> Vec<InstanceStatus> {
        (0..m).map(|i| status(i, 0, false, 100)).collect()
    }

    #[test]
    fn initial_assignment_is_round_robin_home() {
        let a = InstanceAssignment::new(6, 4, 8);
        let homes: Vec<u32> = a.assignments().iter().map(|i| i.0).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn healthy_instances_keep_their_clients() {
        let mut a = InstanceAssignment::new(4, 4, 8);
        assert!(a.update(&healthy(4)).is_empty());
    }

    #[test]
    fn clients_drain_off_an_instance_in_view_change() {
        let mut a = InstanceAssignment::new(4, 4, 8);
        let mut obs = healthy(4);
        obs[3] = status(3, 1, true, 0);
        let handoffs = a.update(&obs);
        assert_eq!(handoffs.len(), 1);
        assert_eq!(handoffs[0].from, InstanceId(3));
        // Least-loaded eligible instance (all tied) → lowest id wins.
        assert_eq!(handoffs[0].to, InstanceId(0));
        assert_eq!(a.assignment(3), InstanceId(0));
    }

    #[test]
    fn handoff_back_waits_for_sigma_rounds_of_progress() {
        let sigma = 8;
        let mut a = InstanceAssignment::new(4, 4, sigma);
        let mut obs = healthy(4);
        obs[3] = status(3, 1, true, 0);
        a.update(&obs);
        assert_eq!(a.assignment(3), InstanceId(0), "drained during view change");

        // The view change completed but the new coordinator has not yet
        // demonstrated σ rounds: clients must not return.
        obs[3] = status(3, 1, false, sigma - 1);
        assert!(a.update(&obs).is_empty());
        assert_eq!(a.assignment(3), InstanceId(0));

        // σ rounds of demonstrated progress: the client hands back off.
        obs[3] = status(3, 1, false, sigma);
        let handoffs = a.update(&obs);
        assert_eq!(
            handoffs,
            vec![Handoff {
                client: 3,
                from: InstanceId(0),
                to: InstanceId(3)
            }]
        );
        assert_eq!(a.assignment(3), InstanceId(3));
    }

    #[test]
    fn a_flapping_coordinator_restarts_the_sigma_clock() {
        let sigma = 8;
        let mut a = InstanceAssignment::new(4, 4, sigma);
        let mut obs = healthy(4);
        obs[3] = status(3, 1, true, 0);
        a.update(&obs);
        // The replacement also failed: a second view change resets progress.
        obs[3] = status(3, 2, false, sigma - 1);
        assert!(
            a.update(&obs).is_empty(),
            "σ not yet demonstrated in view 2"
        );
        obs[3] = status(3, 2, false, sigma);
        assert_eq!(a.update(&obs).len(), 1);
    }

    #[test]
    fn drained_clients_balance_across_eligible_instances() {
        // Two clients homed on instance 2 of three; instance 2 fails.
        let mut a = InstanceAssignment::new(6, 3, 8);
        let mut obs = healthy(3);
        obs[2] = status(2, 1, true, 0);
        let handoffs = a.update(&obs);
        assert_eq!(handoffs.len(), 2);
        let targets: Vec<u32> = handoffs.iter().map(|h| h.to.0).collect();
        assert_eq!(
            targets,
            vec![0, 1],
            "spread over the least-loaded instances"
        );
    }

    #[test]
    fn with_no_eligible_instance_clients_stay_put() {
        let mut a = InstanceAssignment::new(2, 1, 8);
        let obs = vec![status(0, 1, true, 0)];
        assert!(
            a.update(&obs).is_empty(),
            "a single-instance deployment mid view change keeps its clients"
        );
        assert_eq!(a.assignment(0), InstanceId(0));
        // Once the new coordinator proves itself, nothing needs to move —
        // the clients never left.
        let obs = vec![status(0, 1, false, 8)];
        assert!(a.update(&obs).is_empty());
    }
}
