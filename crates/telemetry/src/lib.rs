//! `rcc-telemetry` — the deterministic metrics and flight-recorder layer of
//! the RCC reproduction.
//!
//! Every layer of the workspace measures itself through the same three
//! primitives, pre-registered in a [`Registry`] at setup time:
//!
//! * [`Counter`] — a monotonic count, sharded over a few cache-line-padded
//!   atomics so concurrent increments (the node pipeline, the edge's I/O
//!   threads) never contend on one cell. Scrape sums the shards.
//! * [`Gauge`] — a level or high-water mark (queue depth, peak
//!   connections); [`Gauge::set_max`] is the fetch-max idiom the transport
//!   layer already uses for `peak_clients`.
//! * [`Histogram`] — a fixed-bucket log-scale distribution (8 sub-buckets
//!   per power of two, ≤ ~6% relative bucket error) for stage timings and
//!   latencies. [`LocalHistogram`] is the same bucket layout without
//!   atomics, for single-threaded recorders like a driver session.
//!
//! The hot path — `inc`/`add`/`set`/`record` — performs **no allocation and
//! takes no lock**: handles are `Arc`s onto fixed-size atomic cells created
//! at registration. Locking happens only at registration and scrape, both
//! off the measured paths.
//!
//! Determinism: metric values are exact integer counts, so any
//! interleaving of the same multiset of operations scrapes the same
//! [`Snapshot`] — and under a fixed seed the single-threaded simulator
//! performs the identical operation sequence, making snapshots
//! bit-comparable across runs (`Snapshot: PartialEq`; the sim's
//! determinism test asserts it). Timestamps flow through the
//! [`TelemetryClock`] seam in [`clock`], the only place this crate touches
//! `std::time` — `rcc-lint` gates every other file here as deterministic
//! and the whole crate as panic-free.
//!
//! The [`FlightRecorder`] rides alongside the registry: a bounded ring of
//! structured failure-handling events (view changes, σ-lag detections,
//! checkpoints, hand-offs, admission rejects, reconnects) dumped when a
//! run diverges, trips a floor, or is asked with `--dump-events`. See
//! `docs/OBSERVABILITY.md` for the metric catalog and dump formats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod flight;
pub mod snapshot;

pub use clock::{TelemetryClock, VirtualClock, WallClock};
pub use flight::{dump_jsonl, dump_text, FlightEvent, FlightEventKind, FlightRecorder};
pub use snapshot::{HistogramSnapshot, Snapshot};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Counter shards: enough to spread a node's few concurrent writers
/// (mailbox thread, I/O sweeps, worker pool) across cache lines without
/// bloating every counter.
const SHARDS: usize = 8;

/// Log-scale bucket layout: values `0..8` get exact buckets, then 8 linear
/// sub-buckets per power of two up to `u64::MAX` — 496 buckets, ≤ ~6%
/// relative error at the bucket upper bound.
const SUB_BUCKETS: u64 = 8;
/// Total bucket count of the fixed layout.
pub const HISTOGRAM_BUCKETS: usize = 496;

/// The bucket holding `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let top = 63 - value.leading_zeros() as u64;
    let sub = (value >> (top - 3)) & (SUB_BUCKETS - 1);
    ((top - 3) * SUB_BUCKETS + SUB_BUCKETS + sub) as usize
}

/// The inclusive upper bound of bucket `index`.
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let i = index - SUB_BUCKETS;
    let top = i / SUB_BUCKETS + 3;
    let sub = i % SUB_BUCKETS;
    let lower = (SUB_BUCKETS + sub) << (top - 3);
    lower + ((1u64 << (top - 3)) - 1)
}

#[repr(align(64))]
struct PaddedAtomic(AtomicU64);

impl PaddedAtomic {
    const fn zero() -> PaddedAtomic {
        PaddedAtomic(AtomicU64::new(0))
    }
}

/// Registration order of threads, used to scatter them over counter
/// shards. Not a hash: ids are dense, so successive threads land on
/// successive shards.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

fn shard_index() -> usize {
    THREAD_SHARD.with(|shard| *shard)
}

struct CounterCell {
    shards: [PaddedAtomic; SHARDS],
}

impl CounterCell {
    fn new() -> CounterCell {
        CounterCell {
            shards: [
                PaddedAtomic::zero(),
                PaddedAtomic::zero(),
                PaddedAtomic::zero(),
                PaddedAtomic::zero(),
                PaddedAtomic::zero(),
                PaddedAtomic::zero(),
                PaddedAtomic::zero(),
                PaddedAtomic::zero(),
            ],
        }
    }

    fn sum(&self) -> u64 {
        self.shards.iter().fold(0u64, |acc, shard| {
            acc.saturating_add(shard.0.load(Ordering::Relaxed))
        })
    }
}

/// A monotonic counter handle. Cloning shares the cell.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<CounterCell>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(shard) = self.cell.shards.get(shard_index()) {
            shard.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current total across shards.
    pub fn value(&self) -> u64 {
        self.cell.sum()
    }
}

struct GaugeCell {
    value: AtomicU64,
}

/// A gauge handle: a level ([`Gauge::set`]) or a high-water mark
/// ([`Gauge::set_max`]). Cloning shares the cell.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<GaugeCell>,
}

impl Gauge {
    /// Stores `value`.
    pub fn set(&self, value: u64) {
        self.cell.value.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is higher (high-water mark).
    pub fn set_max(&self, value: u64) {
        self.cell.value.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

struct HistogramCell {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl HistogramCell {
    fn new() -> HistogramCell {
        let mut buckets = Vec::with_capacity(HISTOGRAM_BUCKETS);
        for _ in 0..HISTOGRAM_BUCKETS {
            buckets.push(AtomicU64::new(0));
        }
        HistogramCell {
            buckets,
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        if let Some(bucket) = self.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut pairs = Vec::new();
        let mut count = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            let samples = bucket.load(Ordering::Relaxed);
            if samples > 0 {
                count = count.saturating_add(samples);
                pairs.push((bucket_upper(index), samples));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            buckets: pairs,
        }
    }
}

/// A histogram handle over the fixed log-scale bucket layout. Cloning
/// shares the cell.
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.cell.record(value);
    }

    /// Folds a [`LocalHistogram`]'s accumulated samples in (bucket layouts
    /// are identical, so this is a bucket-wise add).
    pub fn merge_local(&self, local: &LocalHistogram) {
        for (index, &samples) in local.buckets.iter().enumerate() {
            if samples > 0 {
                if let Some(bucket) = self.cell.buckets.get(index) {
                    bucket.fetch_add(samples, Ordering::Relaxed);
                }
            }
        }
        self.cell.sum.fetch_add(local.sum, Ordering::Relaxed);
    }

    /// The histogram's frozen state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.snapshot()
    }
}

/// The same bucket layout as [`Histogram`] without atomics: for recorders
/// owned by a single thread (a driver session, a sim component) where even
/// relaxed atomics are overhead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> LocalHistogram {
        LocalHistogram::new()
    }
}

impl LocalHistogram {
    /// An empty histogram.
    pub fn new() -> LocalHistogram {
        LocalHistogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if let Some(bucket) = self.buckets.get_mut(bucket_index(value)) {
            *bucket += 1;
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `p` (bucket upper bound; 0 when empty).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &samples) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(samples);
            if samples > 0 && seen >= rank {
                return bucket_upper(index);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Folds `other` in (bucket-wise add).
    pub fn merge(&mut self, other: &LocalHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The histogram's frozen state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut pairs = Vec::new();
        for (index, &samples) in self.buckets.iter().enumerate() {
            if samples > 0 {
                pairs.push((bucket_upper(index), samples));
            }
        }
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            buckets: pairs,
        }
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

/// A registry of named metrics. Cloning shares the underlying map, so one
/// registry can be handed to every component of a node (or one per replica
/// to a whole cluster, merged at scrape with [`Snapshot::merged`]).
///
/// Handles are meant to be resolved once at setup; `counter`/`gauge`/
/// `histogram` take the registration lock, the handles they return never
/// do. Asking for an existing name returns a handle onto the same cell;
/// asking with a *different kind* than the name was registered with
/// returns a detached cell (recorded values go nowhere) rather than
/// panicking — the deployment path must not crash over a telemetry name
/// collision.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &lock_unpoisoned(&self.metrics).len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered as `name` (registering it on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = lock_unpoisoned(&self.metrics);
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(CounterCell::new())));
        match metric {
            Metric::Counter(cell) => Counter { cell: cell.clone() },
            _ => Counter {
                cell: Arc::new(CounterCell::new()),
            },
        }
    }

    /// The gauge registered as `name` (registering it on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = lock_unpoisoned(&self.metrics);
        let metric = metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Gauge(Arc::new(GaugeCell {
                value: AtomicU64::new(0),
            }))
        });
        match metric {
            Metric::Gauge(cell) => Gauge { cell: cell.clone() },
            _ => Gauge {
                cell: Arc::new(GaugeCell {
                    value: AtomicU64::new(0),
                }),
            },
        }
    }

    /// The histogram registered as `name` (registering it on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = lock_unpoisoned(&self.metrics);
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCell::new())));
        match metric {
            Metric::Histogram(cell) => Histogram { cell: cell.clone() },
            _ => Histogram {
                cell: Arc::new(HistogramCell::new()),
            },
        }
    }

    /// Scrapes every metric into a name-sorted [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let metrics = lock_unpoisoned(&self.metrics);
        let mut snapshot = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(cell) => snapshot.counters.push((name.clone(), cell.sum())),
                Metric::Gauge(cell) => snapshot
                    .gauges
                    .push((name.clone(), cell.value.load(Ordering::Relaxed))),
                Metric::Histogram(cell) => {
                    snapshot.histograms.push((name.clone(), cell.snapshot()))
                }
            }
        }
        snapshot
    }
}

/// Locks `mutex`, recovering the guard when a previous holder panicked.
/// The registry map's updates are single inserts — no multi-step invariant
/// a mid-update panic could tear — and telemetry must stay scrapeable on
/// the panic path (that is when the flight recorder is dumped).
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_exact_then_log_scale() {
        for value in 0..8u64 {
            assert_eq!(bucket_index(value), value as usize);
            assert_eq!(bucket_upper(value as usize), value);
        }
        // Every bucket's upper bound maps back to the same bucket, and
        // upper bounds are strictly increasing.
        let mut previous = 0u64;
        for index in 0..HISTOGRAM_BUCKETS {
            let upper = bucket_upper(index);
            assert_eq!(bucket_index(upper), index, "round-trip of bucket {index}");
            if index > 0 {
                assert!(upper > previous, "bucket {index} upper not increasing");
            }
            previous = upper;
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Relative bucket width stays within ~12.5% of the lower bound
        // (8 sub-buckets per power of two).
        let idx = bucket_index(1_000_000);
        let upper = bucket_upper(idx);
        let lower = if idx == 0 {
            0
        } else {
            bucket_upper(idx - 1) + 1
        };
        assert!((upper - lower) as f64 / lower as f64 <= 0.125 + 1e-9);
    }

    #[test]
    fn counters_sum_across_threads() {
        let registry = Registry::new();
        let counter = registry.counter("ops");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("counter thread");
        }
        assert_eq!(counter.value(), 4000);
        assert_eq!(registry.snapshot().counter("ops"), Some(4000));
    }

    #[test]
    fn gauges_track_levels_and_high_water_marks() {
        let registry = Registry::new();
        let gauge = registry.gauge("depth");
        gauge.set(5);
        gauge.set_max(3);
        assert_eq!(gauge.value(), 5, "set_max never lowers");
        gauge.set_max(9);
        assert_eq!(registry.snapshot().gauge("depth"), Some(9));
    }

    #[test]
    fn histograms_and_local_histograms_agree() {
        let registry = Registry::new();
        let shared = registry.histogram("lat");
        let mut local = LocalHistogram::new();
        for value in [1u64, 7, 100, 100, 5_000, 1_000_000] {
            shared.record(value);
            local.record(value);
        }
        assert_eq!(shared.snapshot(), local.snapshot());
        assert_eq!(local.percentile(0.5), bucket_upper(bucket_index(100)));
        // merge_local doubles every bucket.
        shared.merge_local(&local);
        assert_eq!(shared.snapshot().count, 12);
    }

    #[test]
    fn same_operations_scrape_identical_snapshots() {
        let run = || {
            let registry = Registry::new();
            let committed = registry.counter("sim.committed");
            let peak = registry.gauge("sim.peak");
            let latency = registry.histogram("sim.latency_us");
            for i in 0..100u64 {
                committed.add(i % 7);
                peak.set_max(i);
                latency.record(i * 31);
            }
            registry.snapshot()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn kind_collisions_return_detached_handles_not_panics() {
        let registry = Registry::new();
        let counter = registry.counter("name");
        counter.inc();
        // Same name, wrong kind: a detached cell, original unharmed.
        let gauge = registry.gauge("name");
        gauge.set(99);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("name"), Some(1));
        assert_eq!(snapshot.gauge("name"), None);
    }

    #[test]
    fn registered_names_scrape_sorted() {
        let registry = Registry::new();
        registry.counter("zeta");
        registry.counter("alpha");
        registry.counter("mid");
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
