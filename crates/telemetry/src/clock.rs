//! The clock seam of the telemetry layer — **the only file in this crate
//! (and in any crate instrumented through it) that may touch `std::time`**.
//!
//! Metrics and flight-recorder events are timestamped, but the layers being
//! instrumented disagree about what "now" means:
//!
//! * the deterministic layers (`rcc-sim`, and through it `rcc-core`) run on
//!   *virtual* time — reading a wall clock there would break bit-for-bit
//!   reproducibility and trip `rcc-lint`'s wall-clock gate;
//! * the deployment layers (`rcc-node`, the client edge, the fleet driver)
//!   run on *wall* time.
//!
//! [`TelemetryClock`] abstracts the difference: the simulator injects a
//! [`VirtualClock`] it advances from its event loop, while `rcc-node`
//! injects a [`WallClock`] anchored at process start. Instrumented code
//! never names `Instant` — it asks the clock for nanoseconds.
//!
//! `rcc-lint` enforces the seam: every other file under
//! `crates/telemetry/src` sits in the deterministic scope, so `Instant` /
//! `SystemTime` outside this file fails the workspace analysis.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond clock, injected by the layer being instrumented.
pub trait TelemetryClock: Send + Sync {
    /// Nanoseconds since the clock's epoch (run start).
    fn now_nanos(&self) -> u64;
}

/// Virtual time, advanced explicitly by a deterministic event loop.
///
/// Clones share the same underlying time cell, so a single simulation can
/// hand the clock to many instrumented components and advance them all at
/// once. [`VirtualClock::advance_to`] is monotone (`fetch_max`), which keeps
/// the clock well-behaved even if a caller replays an earlier timestamp.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock at nanosecond zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advances the clock to `nanos` (no-op when time already passed it).
    pub fn advance_to(&self, nanos: u64) {
        self.nanos.fetch_max(nanos, Ordering::Relaxed);
    }
}

impl TelemetryClock for VirtualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

/// Wall time, anchored at construction — the deployment-side clock.
#[derive(Clone, Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is "now".
    pub fn new() -> WallClock {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl TelemetryClock for WallClock {
    fn now_nanos(&self) -> u64 {
        // Saturate rather than wrap: a u64 of nanoseconds covers ~584 years
        // of run time, but the cast from u128 must still be total.
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_shared_and_monotone() {
        let clock = VirtualClock::new();
        let alias = clock.clone();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance_to(500);
        assert_eq!(alias.now_nanos(), 500);
        // Replaying an earlier time never moves the clock backwards.
        alias.advance_to(100);
        assert_eq!(clock.now_nanos(), 500);
    }

    #[test]
    fn wall_clock_advances() {
        let clock = WallClock::new();
        let a = clock.now_nanos();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = clock.now_nanos();
        assert!(b > a, "wall clock did not advance ({a} -> {b})");
    }
}
