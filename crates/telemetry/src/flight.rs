//! The flight recorder: a bounded ring buffer of structured, timestamped
//! events around the failure-handling machinery (view changes, σ-lag
//! detection, checkpoints, client hand-offs, admission rejects,
//! reconnects).
//!
//! The recorder is *always on* and deliberately tiny: recording is one
//! mutex-guarded ring append of a `Copy` event, and the ring evicts
//! oldest-first under overflow (a flight recorder keeps the events closest
//! to the incident, and the incident is always "now"). Dumps happen on
//! divergence, floor violations, or `--dump-events` — the cases where the
//! end-of-run aggregates say *that* something went wrong and the event
//! sequence says *how*.

use crate::snapshot::json_escape_into;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// What happened. Every variant is `Copy` and field-named so dumps are
/// self-describing without any allocation on the record path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A replica's σ-lag detector fired against `suspected` (§III-C): the
    /// first step of the recovery timeline.
    SigmaLagDetected {
        /// The replica suspected of stalling its instance.
        suspected: u32,
    },
    /// View-change arbitration against `suspected` began (first suspicion
    /// since the last completed change).
    ViewChangeEntered {
        /// The coordinator being voted out.
        suspected: u32,
    },
    /// A view change completed: the instance runs under a new coordinator.
    ViewChangeCompleted {
        /// The new view number.
        view: u64,
        /// The replica now coordinating.
        new_primary: u32,
    },
    /// A §III-D checkpoint reached its stability quorum; state below
    /// `round` is pruned.
    CheckpointStabilized {
        /// One past the last round the stable checkpoint covers.
        round: u64,
    },
    /// The §III-E assignment policy moved a client off its instance (drain
    /// to a healthy neighbour or σ-spaced return home).
    ClientHandoff {
        /// The client (workload stream) that moved.
        client: u64,
    },
    /// The client edge turned a connection away at its admission cap.
    AdmissionReject {
        /// Connected clients at the moment of the reject.
        connections: u64,
    },
    /// A client/driver connection was re-established after a failure.
    Reconnect {
        /// The replica the connection was re-dialed to.
        peer: u64,
    },
    /// A run finished below its configured liveness floor (values in the
    /// gate's own unit, e.g. txn/s or completed batches).
    FloorViolation {
        /// The observed value.
        observed: u64,
        /// The configured floor it undershot.
        floor: u64,
    },
    /// Replicas disagreed on the execution order or ledger — the safety
    /// violation every layer treats as fatal.
    Divergence {
        /// The replica whose state disagreed with replica 0's.
        replica: u32,
    },
}

impl FlightEventKind {
    /// The stable kebab-case name used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            FlightEventKind::SigmaLagDetected { .. } => "sigma-lag-detected",
            FlightEventKind::ViewChangeEntered { .. } => "view-change-entered",
            FlightEventKind::ViewChangeCompleted { .. } => "view-change-completed",
            FlightEventKind::CheckpointStabilized { .. } => "checkpoint-stabilized",
            FlightEventKind::ClientHandoff { .. } => "client-handoff",
            FlightEventKind::AdmissionReject { .. } => "admission-reject",
            FlightEventKind::Reconnect { .. } => "reconnect",
            FlightEventKind::FloorViolation { .. } => "floor-violation",
            FlightEventKind::Divergence { .. } => "divergence",
        }
    }

    /// The variant's fields as `(name, value)` pairs, for rendering.
    fn fields(self) -> [Option<(&'static str, u64)>; 2] {
        match self {
            FlightEventKind::SigmaLagDetected { suspected }
            | FlightEventKind::ViewChangeEntered { suspected } => {
                [Some(("suspected", suspected as u64)), None]
            }
            FlightEventKind::ViewChangeCompleted { view, new_primary } => [
                Some(("view", view)),
                Some(("new_primary", new_primary as u64)),
            ],
            FlightEventKind::CheckpointStabilized { round } => [Some(("round", round)), None],
            FlightEventKind::ClientHandoff { client } => [Some(("client", client)), None],
            FlightEventKind::AdmissionReject { connections } => {
                [Some(("connections", connections)), None]
            }
            FlightEventKind::Reconnect { peer } => [Some(("peer", peer)), None],
            FlightEventKind::FloorViolation { observed, floor } => {
                [Some(("observed", observed)), Some(("floor", floor))]
            }
            FlightEventKind::Divergence { replica } => [Some(("replica", replica as u64)), None],
        }
    }
}

/// One recorded event: when (clock nanoseconds through the
/// [`crate::TelemetryClock`] seam), where (a source id — replica, edge, or
/// driver index), and what.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the recording layer's clock epoch.
    pub at_nanos: u64,
    /// The recording source (replica id for consensus events, edge/driver
    /// index for connection events).
    pub source: u32,
    /// What happened.
    pub kind: FlightEventKind,
}

struct Ring {
    events: VecDeque<FlightEvent>,
    dropped: u64,
}

/// A bounded, shareable ring of [`FlightEvent`]s. Clones share the ring.
#[derive(Clone)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Arc<Mutex<Ring>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            inner: Arc::new(Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity),
                dropped: 0,
            })),
        }
    }

    /// The ring's capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event, evicting the oldest when the ring is full.
    pub fn record(&self, at_nanos: u64, source: u32, kind: FlightEventKind) {
        let mut ring = lock_unpoisoned(&self.inner);
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped = ring.dropped.saturating_add(1);
        }
        ring.events.push_back(FlightEvent {
            at_nanos,
            source,
            kind,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        lock_unpoisoned(&self.inner)
            .events
            .iter()
            .copied()
            .collect()
    }

    /// Events evicted by overflow over the recorder's lifetime.
    pub fn dropped(&self) -> u64 {
        lock_unpoisoned(&self.inner).dropped
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).events.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Locks `mutex`, recovering the guard when a previous holder panicked:
/// the ring's invariants are a single bounded queue, which any interrupted
/// append leaves structurally intact — and a flight recorder must keep
/// working on the panic path, which is exactly when it is dumped.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Renders events as human-readable lines, one per event, oldest first:
/// `[   1.234567s] source 2: view-change-completed view=1 new_primary=3`.
pub fn dump_text(events: &[FlightEvent]) -> String {
    let mut out = String::new();
    for event in events {
        let secs = event.at_nanos / 1_000_000_000;
        let micros = (event.at_nanos % 1_000_000_000) / 1_000;
        let _ = write!(
            out,
            "[{secs:>4}.{micros:06}s] source {}: {}",
            event.source,
            event.kind.name()
        );
        for (name, value) in event.kind.fields().into_iter().flatten() {
            let _ = write!(out, " {name}={value}");
        }
        out.push('\n');
    }
    out
}

/// Renders events as JSONL, one object per event, oldest first. When
/// `label` is non-empty each object carries it as a `"run"` field.
pub fn dump_jsonl(events: &[FlightEvent], label: &str) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str("{\"event\":\"");
        out.push_str(event.kind.name());
        out.push('"');
        if !label.is_empty() {
            out.push_str(",\"run\":\"");
            json_escape_into(&mut out, label);
            out.push('"');
        }
        let _ = write!(
            out,
            ",\"at_nanos\":{},\"source\":{}",
            event.at_nanos, event.source
        );
        for (name, value) in event.kind.fields().into_iter().flatten() {
            let _ = write!(out, ",\"{name}\":{value}");
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_evicts_oldest_first() {
        let recorder = FlightRecorder::new(3);
        for i in 0..5u64 {
            recorder.record(i, 0, FlightEventKind::ClientHandoff { client: i });
        }
        let events = recorder.events();
        assert_eq!(events.len(), 3, "ring must stay at its capacity bound");
        assert_eq!(recorder.dropped(), 2, "two oldest events were evicted");
        let clients: Vec<u64> = events
            .iter()
            .map(|e| match e.kind {
                FlightEventKind::ClientHandoff { client } => client,
                other => panic!("unexpected kind {other:?}"),
            })
            .collect();
        assert_eq!(clients, vec![2, 3, 4], "eviction is oldest-first");
    }

    #[test]
    fn clones_share_the_ring() {
        let recorder = FlightRecorder::new(8);
        let alias = recorder.clone();
        alias.record(1, 7, FlightEventKind::Reconnect { peer: 2 });
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.events()[0].source, 7);
    }

    #[test]
    fn dumps_render_every_field() {
        let recorder = FlightRecorder::new(8);
        recorder.record(
            1_500_000,
            2,
            FlightEventKind::ViewChangeCompleted {
                view: 1,
                new_primary: 3,
            },
        );
        recorder.record(
            2_000_000,
            0,
            FlightEventKind::FloorViolation {
                observed: 5,
                floor: 10,
            },
        );
        let text = dump_text(&recorder.events());
        assert!(text.contains("view-change-completed view=1 new_primary=3"));
        assert!(text.contains("floor-violation observed=5 floor=10"));
        let jsonl = dump_jsonl(&recorder.events(), "smoke");
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"event\":\"view-change-completed\""));
        assert!(jsonl.contains("\"run\":\"smoke\""));
        assert!(jsonl.contains("\"new_primary\":3"));
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        let recorder = FlightRecorder::new(0);
        recorder.record(0, 0, FlightEventKind::Divergence { replica: 1 });
        recorder.record(1, 0, FlightEventKind::Divergence { replica: 2 });
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.dropped(), 1);
    }
}
