//! Point-in-time scrapes of a [`crate::Registry`] and their render formats.
//!
//! A [`Snapshot`] is plain data — name-sorted vectors of integers — so it is
//! `PartialEq`-comparable across runs: the determinism tests assert that two
//! same-seed simulations scrape *identical* snapshots. Three render formats
//! cover the consumers: an aligned text table for humans, CSV for CI
//! artifacts and gates, and JSONL for periodic appends (one self-contained
//! object per line, so a file of interleaved scrapes stays parseable).

use std::fmt::Write as _;

/// The frozen state of one histogram: total count, total sum, and the
/// non-empty buckets as `(upper_bound, count)` pairs in ascending order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (saturating).
    pub sum: u64,
    /// Non-empty buckets: `(inclusive upper bound, samples)` ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `p` (clamped to `[0, 1]`), reported as the
    /// upper bound of the bucket holding the rank-`⌈p·count⌉` sample.
    /// Returns 0 when the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(upper, count) in &self.buckets {
            seen = seen.saturating_add(count);
            if seen >= rank {
                return upper;
            }
        }
        self.buckets.last().map(|&(upper, _)| upper).unwrap_or(0)
    }

    /// Bucket-wise merge of two snapshots taken from histograms with the
    /// same bucket layout (counts and sums add).
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: Vec<(u64, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            let a = self.buckets.get(i).copied();
            let b = other.buckets.get(j).copied();
            match (a, b) {
                (Some((ua, ca)), Some((ub, cb))) => {
                    if ua == ub {
                        buckets.push((ua, ca.saturating_add(cb)));
                        i += 1;
                        j += 1;
                    } else if ua < ub {
                        buckets.push((ua, ca));
                        i += 1;
                    } else {
                        buckets.push((ub, cb));
                        j += 1;
                    }
                }
                (Some(pair), None) => {
                    buckets.push(pair);
                    i += 1;
                }
                (None, Some(pair)) => {
                    buckets.push(pair);
                    j += 1;
                }
                (None, None) => break,
            }
        }
        HistogramSnapshot {
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
            buckets,
        }
    }
}

/// A point-in-time scrape of every metric in a registry, name-sorted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Gauges as `(name, value)`.
    pub gauges: Vec<(String, u64)>,
    /// Histograms as `(name, frozen state)`.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Looks a counter up by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks a gauge up by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks a histogram up by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// True when no metric holds any data.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges two snapshots from different registries (e.g. the per-replica
    /// registries of a cluster): counters and histograms add, gauges take
    /// the maximum — a gauge is a high-water mark, so summing one across
    /// sources (or across a restart) would fabricate a level no single
    /// source ever saw.
    pub fn merged(&self, other: &Snapshot) -> Snapshot {
        Snapshot {
            counters: merge_values(&self.counters, &other.counters, u64::saturating_add),
            gauges: merge_values(&self.gauges, &other.gauges, u64::max),
            histograms: merge_named(&self.histograms, &other.histograms, |a, b| a.merged(b)),
        }
    }

    /// Renders the snapshot as an aligned, human-readable text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(4)
            .max(4);
        let _ = writeln!(out, "{:width$}  {:>12}", "name", "value");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name:width$}  {value:>12}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "{name:width$}  {value:>12}  (gauge)");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(
                out,
                "{name:width$}  {:>12}  mean {:.1}  p50 {}  p99 {}",
                hist.count,
                hist.mean(),
                hist.percentile(0.50),
                hist.percentile(0.99),
            );
        }
        out
    }

    /// Renders the snapshot as CSV with the fixed header
    /// `kind,name,value,count,sum,p50,p99` (one row per metric; fields that
    /// do not apply to a kind are left empty). Deterministic byte-for-byte
    /// for a fixed snapshot.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,value,count,sum,p50,p99\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter,{name},{value},,,,");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge,{name},{value},,,,");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram,{name},,{},{},{},{}",
                hist.count,
                hist.sum,
                hist.percentile(0.50),
                hist.percentile(0.99),
            );
        }
        out
    }

    /// Renders the snapshot as JSONL: one self-contained JSON object per
    /// metric. When `label` is non-empty every object carries it as a
    /// `"run"` field, so scrapes from different runs (or different times)
    /// can share one append-only file.
    pub fn to_jsonl(&self, label: &str) -> String {
        let mut out = String::new();
        let prefix = |out: &mut String, kind: &str, name: &str| {
            out.push_str("{\"kind\":\"");
            out.push_str(kind);
            out.push_str("\",\"name\":\"");
            json_escape_into(out, name);
            out.push('"');
            if !label.is_empty() {
                out.push_str(",\"run\":\"");
                json_escape_into(out, label);
                out.push('"');
            }
        };
        for (name, value) in &self.counters {
            prefix(&mut out, "counter", name);
            let _ = writeln!(out, ",\"value\":{value}}}");
        }
        for (name, value) in &self.gauges {
            prefix(&mut out, "gauge", name);
            let _ = writeln!(out, ",\"value\":{value}}}");
        }
        for (name, hist) in &self.histograms {
            prefix(&mut out, "histogram", name);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
                hist.count,
                hist.sum,
                hist.percentile(0.50),
                hist.percentile(0.99),
            );
            for (i, (upper, count)) in hist.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{upper},{count}]");
            }
            out.push_str("]}\n");
        }
        out
    }
}

/// Merge-joins two name-sorted `(name, u64)` lists with `combine` on
/// name collisions.
fn merge_values(
    a: &[(String, u64)],
    b: &[(String, u64)],
    combine: fn(u64, u64) -> u64,
) -> Vec<(String, u64)> {
    merge_named(a, b, |x: &u64, y: &u64| combine(*x, *y))
}

/// Merge-joins two name-sorted `(name, T)` lists with `combine` on name
/// collisions; entries present on one side only are carried through.
fn merge_named<T: Clone>(
    a: &[(String, T)],
    b: &[(String, T)],
    combine: impl Fn(&T, &T) -> T,
) -> Vec<(String, T)> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some((na, va)), Some((nb, vb))) => {
                if na == nb {
                    out.push((na.clone(), combine(va, vb)));
                    i += 1;
                    j += 1;
                } else if na < nb {
                    out.push((na.clone(), va.clone()));
                    i += 1;
                } else {
                    out.push((nb.clone(), vb.clone()));
                    j += 1;
                }
            }
            (Some((na, va)), None) => {
                out.push((na.clone(), va.clone()));
                i += 1;
            }
            (None, Some((nb, vb))) => {
                out.push((nb.clone(), vb.clone()));
                j += 1;
            }
            (None, None) => break,
        }
    }
    out
}

/// Appends `s` to `out` with the JSON string escapes required for the
/// characters metric names and labels can realistically contain.
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(pairs: &[(u64, u64)]) -> HistogramSnapshot {
        HistogramSnapshot {
            count: pairs.iter().map(|&(_, c)| c).sum(),
            sum: pairs.iter().map(|&(u, c)| u * c).sum(),
            buckets: pairs.to_vec(),
        }
    }

    #[test]
    fn percentiles_walk_the_cumulative_distribution() {
        let h = hist(&[(1, 50), (10, 40), (100, 10)]);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(0.5), 1);
        assert_eq!(h.percentile(0.9), 10);
        assert_eq!(h.percentile(0.99), 100);
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(HistogramSnapshot::default().percentile(0.5), 0);
    }

    #[test]
    fn merged_sums_counters_and_maxes_gauges() {
        let a = Snapshot {
            counters: vec![("a".into(), 1), ("b".into(), 2)],
            gauges: vec![("peak".into(), 7)],
            histograms: vec![("h".into(), hist(&[(1, 3)]))],
        };
        let b = Snapshot {
            counters: vec![("b".into(), 5), ("c".into(), 1)],
            gauges: vec![("peak".into(), 4)],
            histograms: vec![("h".into(), hist(&[(1, 1), (10, 2)]))],
        };
        let m = a.merged(&b);
        assert_eq!(m.counter("a"), Some(1));
        assert_eq!(m.counter("b"), Some(7));
        assert_eq!(m.counter("c"), Some(1));
        assert_eq!(m.gauge("peak"), Some(7), "gauges max-merge, never sum");
        let h = m.histogram("h").expect("histogram present");
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets, vec![(1, 4), (10, 2)]);
    }

    #[test]
    fn renderers_cover_every_metric() {
        let snap = Snapshot {
            counters: vec![("sim.committed".into(), 42)],
            gauges: vec![("sim.peak".into(), 9)],
            histograms: vec![("lat_us".into(), hist(&[(8, 2), (16, 2)]))],
        };
        let table = snap.to_table();
        assert!(table.contains("sim.committed"));
        assert!(table.contains("p99 16"));
        let csv = snap.to_csv();
        assert!(csv.starts_with("kind,name,value,count,sum,p50,p99\n"));
        assert!(csv.contains("counter,sim.committed,42,,,,"));
        assert!(csv.contains("gauge,sim.peak,9,,,,"));
        assert!(csv.contains("histogram,lat_us,,4,"));
        let jsonl = snap.to_jsonl("run-1");
        assert!(jsonl.contains("\"run\":\"run-1\""));
        assert!(jsonl.contains("\"buckets\":[[8,2],[16,2]]"));
        assert_eq!(jsonl.lines().count(), 3);
    }

    #[test]
    fn snapshots_compare_exactly() {
        let a = Snapshot {
            counters: vec![("x".into(), 1)],
            gauges: vec![],
            histograms: vec![],
        };
        let mut b = a.clone();
        assert_eq!(a, b);
        b.counters[0].1 = 2;
        assert_ne!(a, b);
    }
}
