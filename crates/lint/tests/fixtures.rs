//! Fixture matrix for every rule family (positive: the violation is
//! found; negative: compliant or exempt code is not flagged) plus the
//! self-application gate: the real workspace must lint clean, and the
//! checked-in `docs/WIRE_FORMAT.md` must match the code.

use rcc_lint::lexer::lex;
use rcc_lint::wire;
use rcc_lint::{analyze_workspace, check_file, find_workspace_root, FileScope, Rule};
use std::path::Path;

fn rules_found(source: &str, scope: FileScope) -> Vec<Rule> {
    check_file(Path::new("fixture.rs"), &lex(source), &scope)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

const DETERMINISTIC: FileScope = FileScope {
    deterministic: true,
    panic_free: false,
    channel_discipline: true,
    crate_root: false,
};

const DEPLOYMENT: FileScope = FileScope {
    deterministic: false,
    panic_free: true,
    channel_discipline: true,
    crate_root: false,
};

#[test]
fn hash_collection_positive_and_negative() {
    let bad = "use std::collections::{HashMap, HashSet};\nfn f() {}";
    assert_eq!(
        rules_found(bad, DETERMINISTIC),
        vec![Rule::HashCollection, Rule::HashCollection]
    );
    let good = "use std::collections::{BTreeMap, BTreeSet};\nfn f() {}";
    assert!(rules_found(good, DETERMINISTIC).is_empty());
    // Outside the deterministic scope the same code is fine.
    assert!(rules_found(bad, DEPLOYMENT).is_empty());
}

#[test]
fn wall_clock_positive_and_negative() {
    for bad in [
        "fn f() { let t = std::time::Instant::now(); }",
        "fn f() { let t = std::time::SystemTime::now(); }",
        "fn f(d: std::time::Duration) { std::thread::sleep(d); }",
    ] {
        assert_eq!(
            rules_found(bad, DETERMINISTIC),
            vec![Rule::WallClock],
            "{bad}"
        );
    }
    // Duration is pure arithmetic, and a local `sleep` fn is not
    // `thread::sleep`.
    let good = "fn sleep() {}\nfn f(d: std::time::Duration) { sleep(); let _ = d; }";
    assert!(rules_found(good, DETERMINISTIC).is_empty());
}

#[test]
fn panic_positive_and_negative() {
    let bad = r#"
        fn f(x: Result<u8, u8>) -> u8 {
            if x.is_err() { unreachable!(); }
            x.unwrap()
        }
    "#;
    assert_eq!(rules_found(bad, DEPLOYMENT), vec![Rule::Panic, Rule::Panic]);
    let good = r#"
        fn f(x: Result<u8, u8>) -> Result<u8, u8> {
            let v = x?;
            Ok(v.checked_add(1).unwrap_or(v))
        }
    "#;
    assert!(rules_found(good, DEPLOYMENT).is_empty());
    // The deterministic layers are not the panic scope: state machines
    // there assert internal invariants freely.
    assert!(rules_found(bad, DETERMINISTIC).is_empty());
}

#[test]
fn unbounded_channel_positive_and_negative() {
    let bad = "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }";
    assert_eq!(rules_found(bad, DEPLOYMENT), vec![Rule::UnboundedChannel]);
    let good = "fn f() { let (tx, rx) = std::sync::mpsc::sync_channel::<u8>(16); }";
    assert!(rules_found(good, DEPLOYMENT).is_empty());
}

#[test]
fn test_modules_are_exempt_everywhere() {
    let source = r#"
        #[cfg(test)]
        mod tests {
            use std::collections::HashMap;
            #[test]
            fn t() {
                let (tx, rx) = std::sync::mpsc::channel::<u8>();
                let started = std::time::Instant::now();
                tx.send(1).unwrap();
                assert_eq!(rx.recv().unwrap(), 1);
            }
        }
    "#;
    let everything = FileScope {
        deterministic: true,
        panic_free: true,
        channel_discipline: true,
        crate_root: false,
    };
    assert!(rules_found(source, everything).is_empty());
}

#[test]
fn suppressions_need_reasons_and_cover_one_line() {
    let suppressed = r#"
        fn f(x: Option<u8>) -> u8 {
            // rcc-lint: allow(panic) — fixture: the caller checked.
            x.unwrap()
        }
    "#;
    assert!(rules_found(suppressed, DEPLOYMENT).is_empty());

    let unreasoned = r#"
        fn f(x: Option<u8>) -> u8 {
            // rcc-lint: allow(panic)
            x.unwrap()
        }
    "#;
    assert_eq!(
        rules_found(unreasoned, DEPLOYMENT),
        vec![Rule::AllowSyntax, Rule::Panic]
    );

    let too_greedy = r#"
        fn f(x: Option<u8>, y: Option<u8>) -> u8 {
            // rcc-lint: allow(panic) — fixture: covers only the next line.
            x.unwrap();
            y.unwrap()
        }
    "#;
    assert_eq!(rules_found(too_greedy, DEPLOYMENT), vec![Rule::Panic]);
}

#[test]
fn the_client_edge_modules_are_on_the_panic_free_path() {
    // The readiness event loop, the fleet driver, and the sans-io driver
    // session all run in deployed processes serving thousands of
    // connections — a panic there takes the whole edge down, so they are
    // governed by the panic rule like the rest of the deployment path.
    for path in [
        "crates/network/src/event_loop.rs",
        "crates/network/src/fleet.rs",
        "crates/workload/src/session.rs",
    ] {
        assert!(
            rcc_lint::workspace::scope_for(Path::new(path)).panic_free,
            "{path} must be in panic-freedom scope"
        );
    }
}

#[test]
fn event_loop_style_sweeps_cannot_hide_panics() {
    // The shape of edge event-loop code: a nonblocking read sweep whose
    // error arm is *handled*, but with a panicking shortcut buried in the
    // happy path. The panic rule must see through it.
    let bad = r#"
        fn sweep(conn: &mut Conn) {
            loop {
                match conn.stream.read(&mut conn.scratch) {
                    Ok(0) => { conn.dead = true; return; }
                    Ok(n) => conn.rbuf.extend_from_slice(conn.scratch.get(..n).unwrap()),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => { conn.dead = true; return; }
                }
            }
        }
    "#;
    assert_eq!(rules_found(bad, DEPLOYMENT), vec![Rule::Panic]);
    let good = r#"
        fn sweep(conn: &mut Conn) {
            loop {
                match conn.stream.read(&mut conn.scratch) {
                    Ok(0) => { conn.dead = true; return; }
                    Ok(n) => match conn.scratch.get(..n) {
                        Some(read) => conn.rbuf.extend_from_slice(read),
                        None => break,
                    },
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => { conn.dead = true; return; }
                }
            }
        }
    "#;
    assert!(rules_found(good, DEPLOYMENT).is_empty());
}

#[test]
fn forbid_unsafe_is_required_on_crate_roots_only() {
    let scope = FileScope {
        crate_root: true,
        ..FileScope::default()
    };
    assert_eq!(rules_found("pub mod a;", scope), vec![Rule::ForbidUnsafe]);
    assert!(rules_found("#![forbid(unsafe_code)]\npub mod a;", scope).is_empty());
    assert!(rules_found("pub mod a;", FileScope::default()).is_empty());
}

#[test]
fn wire_fixture_catches_an_encode_decode_skew() {
    let source = r#"
        impl Encode for Vote {
            fn encode(&self, out: &mut Vec<u8>) {
                match self {
                    Vote::Yes => out.push(0),
                    Vote::No => out.push(1),
                }
            }
        }
        impl Decode for Vote {
            fn decode(input: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(match input.u8()? {
                    0 => Vote::Yes,
                    2 => Vote::No,
                    tag => return Err(WireError::InvalidTag { context: "Vote", tag }),
                })
            }
        }
    "#;
    let lexed = lex(source);
    let grammar = wire::extract([(Path::new("fixture.rs"), &lexed)]);
    let findings = grammar.check();
    assert!(
        findings.iter().all(|f| f.rule == Rule::WireSymmetry),
        "{findings:?}"
    );
    assert_eq!(findings.len(), 2, "{findings:?}");
}

// ---------------------------------------------------------------------
// Self-application: the analyzer's reason to exist is that the real tree
// stays clean and the real doc stays current.
// ---------------------------------------------------------------------

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives in the workspace")
}

#[test]
fn the_workspace_lints_clean() {
    let analysis = analyze_workspace(&workspace_root()).expect("workspace readable");
    assert!(
        analysis.diagnostics.is_empty(),
        "workspace findings:\n{}",
        analysis
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The invariant gate is only meaningful if it actually sees the tree.
    assert!(
        analysis.files_scanned > 50,
        "{} files",
        analysis.files_scanned
    );
}

#[test]
fn the_extracted_grammar_covers_the_deployed_protocol() {
    let analysis = analyze_workspace(&workspace_root()).expect("workspace readable");
    for expected in [
        "AuthTag",
        "Frame",
        "PbftMessage",
        "PeerKind",
        "RccMessage",
        "TransactionKind",
        "ZyzzyvaMessage",
    ] {
        assert!(
            analysis.grammar.types.contains_key(expected),
            "missing wire type {expected}; extracted: {:?}",
            analysis.grammar.types.keys().collect::<Vec<_>>()
        );
    }
    assert_eq!(analysis.grammar.constants["WIRE_VERSION"], "1");
}

#[test]
fn the_checked_in_wire_doc_is_current() {
    let root = workspace_root();
    let analysis = analyze_workspace(&root).expect("workspace readable");
    let doc_path = root.join("docs").join("WIRE_FORMAT.md");
    let existing = std::fs::read_to_string(&doc_path).ok();
    let findings = analysis
        .grammar
        .check_doc(Path::new("docs/WIRE_FORMAT.md"), existing.as_deref());
    assert!(
        findings.is_empty(),
        "stale docs/WIRE_FORMAT.md — regenerate with `cargo run -p rcc-lint -- --workspace --write-wire-doc`:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
