//! The per-file rule engine: determinism, panic-freedom, channel
//! discipline, crate hygiene, and suppression-annotation parsing.
//!
//! Rules are matched on the lexed token stream ([`crate::lexer`]), so text
//! inside strings and comments can never trigger them, and anything inside
//! a `#[test]` / `#[cfg(test)]` item is exempt by construction.
//!
//! # Suppressions
//!
//! A finding can be silenced with a line comment of the form (spelled in
//! pieces here so the analyzer's own sources stay clean): the `rcc-lint`
//! marker, a colon, the word `allow` holding the rule id in parentheses, a
//! separator, and a non-empty reason — see `docs/LINTS.md` for the literal
//! syntax. The annotation suppresses that rule on its own line and on the
//! next line that carries code — stacked comment lines extending the
//! reason are skipped. A marker whose annotation is malformed, names an
//! unknown rule, or omits the reason is itself a finding
//! ([`Rule::AllowSyntax`]): the escape hatch must stay auditable.

use crate::lexer::{LexedFile, Token, TokenKind};
use crate::{Diagnostic, Rule};
use std::collections::BTreeSet;
use std::path::Path;

/// Which rule families apply to one source file. Scope assignment is the
/// workspace layer's job ([`crate::workspace`]); the engine just enforces.
#[derive(Clone, Copy, Default, Debug)]
pub struct FileScope {
    /// The file is part of a replicated, bit-identical layer: hash
    /// collections and wall-clock reads are banned.
    pub deterministic: bool,
    /// The file is on the deployment path: panicking calls are banned.
    pub panic_free: bool,
    /// Unbounded `mpsc::channel()` is banned (everywhere but vendored
    /// third-party code).
    pub channel_discipline: bool,
    /// The file is a crate root and must carry `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
}

/// `.method()` names that panic on the error/none case.
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macro names that panic unconditionally when reached. `debug_assert*` is
/// deliberately absent: it vanishes from release replicas.
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Runs every applicable rule over one lexed file.
pub fn check_file(path: &Path, file: &LexedFile, scope: &FileScope) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    let mut suppressed: BTreeSet<(Rule, usize)> = BTreeSet::new();

    for comment in &file.comments {
        match parse_allow(&comment.text) {
            AllowParse::NotAnAnnotation => {}
            AllowParse::Valid(rule) => {
                suppressed.insert((rule, comment.line));
                if let Some(next) = next_code_line(&file.tokens, comment.line) {
                    suppressed.insert((rule, next));
                }
            }
            AllowParse::Malformed(why) => {
                findings.push(diag(path, file, comment.line, Rule::AllowSyntax, why))
            }
        }
    }

    scan_tokens(path, file, scope, &mut findings);

    if scope.crate_root && !has_forbid_unsafe(&file.tokens) {
        findings.push(diag(
            path,
            file,
            1,
            Rule::ForbidUnsafe,
            "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
        ));
    }

    findings.retain(|d| !suppressed.contains(&(d.rule, d.line)));
    findings.sort();
    findings
}

fn scan_tokens(path: &Path, file: &LexedFile, scope: &FileScope, findings: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if file.in_test.get(i).copied().unwrap_or(false) || token.kind != TokenKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
        let next = tokens.get(i + 1);

        if scope.deterministic {
            if token.text == "HashMap" || token.text == "HashSet" {
                findings.push(diag(
                    path,
                    file,
                    token.line,
                    Rule::HashCollection,
                    format!(
                        "`{}` iterates in arbitrary order inside a deterministic layer; \
                         use `BTree{}`",
                        token.text,
                        &token.text[4..]
                    ),
                ));
            }
            if token.text == "Instant" || token.text == "SystemTime" {
                findings.push(diag(
                    path,
                    file,
                    token.line,
                    Rule::WallClock,
                    format!(
                        "`{}` reads the wall clock inside a deterministic layer; \
                         thread time through the simulated-clock seam",
                        token.text
                    ),
                ));
            }
            if token.text == "sleep" && path_prefix_is(tokens, i, "thread") {
                findings.push(diag(
                    path,
                    file,
                    token.line,
                    Rule::WallClock,
                    "`thread::sleep` stalls a deterministic layer on real time".to_owned(),
                ));
            }
        }

        if scope.panic_free {
            let is_method_call = PANIC_METHODS.contains(&token.text.as_str())
                && matches!(prev, Some(p) if p.is_punct('.'))
                && matches!(next, Some(n) if n.is_punct('('));
            if is_method_call {
                findings.push(diag(
                    path,
                    file,
                    token.line,
                    Rule::Panic,
                    format!(
                        "`.{}()` can panic on the deployment path; propagate a typed error \
                         or add a reasoned suppression",
                        token.text
                    ),
                ));
            }
            let is_macro = PANIC_MACROS.contains(&token.text.as_str())
                && matches!(next, Some(n) if n.is_punct('!'));
            if is_macro {
                findings.push(diag(
                    path,
                    file,
                    token.line,
                    Rule::Panic,
                    format!(
                        "`{}!` panics at runtime on the deployment path; return a typed \
                         error or add a reasoned suppression",
                        token.text
                    ),
                ));
            }
        }

        if scope.channel_discipline && token.text == "channel" {
            // `channel(...)` or `channel::<T>(...)` — but not `.channel()`
            // method calls, `fn channel` definitions, or `channel:` struct
            // fields / named arguments.
            let called = matches!(next, Some(n) if n.is_punct('('))
                || (matches!(next, Some(n) if n.is_punct(':'))
                    && matches!(tokens.get(i + 2), Some(n) if n.is_punct(':')));
            let excluded = matches!(prev, Some(p) if p.is_punct('.') || p.is_ident("fn"));
            if called && !excluded {
                findings.push(diag(
                    path,
                    file,
                    token.line,
                    Rule::UnboundedChannel,
                    "`mpsc::channel()` is unbounded; use `sync_channel` with an explicit \
                     capacity so back-pressure is a design decision"
                        .to_owned(),
                ));
            }
        }
    }
}

/// True when the identifier at `i` is reached through `<prefix>::`, e.g.
/// `thread::sleep` or `std::thread::sleep`.
fn path_prefix_is(tokens: &[Token], i: usize, prefix: &str) -> bool {
    i >= 3
        && tokens[i - 1].is_punct(':')
        && tokens[i - 2].is_punct(':')
        && tokens[i - 3].is_ident(prefix)
}

/// Looks for the inner attribute `#![forbid(unsafe_code)]` token sequence.
fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// The first line after `after` that carries any token (comment-only lines
/// carry none, so a multi-line annotation reason still lands on the code
/// line it precedes).
fn next_code_line(tokens: &[Token], after: usize) -> Option<usize> {
    tokens.iter().map(|t| t.line).find(|&line| line > after)
}

fn diag(path: &Path, file: &LexedFile, line: usize, rule: Rule, message: String) -> Diagnostic {
    Diagnostic {
        file: path.to_path_buf(),
        line,
        rule,
        message,
        snippet: file.snippet(line).to_owned(),
    }
}

enum AllowParse {
    NotAnAnnotation,
    Valid(Rule),
    Malformed(String),
}

const MARKER: &str = "rcc-lint";

/// Parses one comment's text as a suppression annotation.
fn parse_allow(text: &str) -> AllowParse {
    let Some(pos) = text.find(MARKER) else {
        return AllowParse::NotAnAnnotation;
    };
    let rest = &text[pos + MARKER.len()..];
    // Prose that merely mentions the tool by name is not an annotation; a
    // marker followed by a colon (or attempting `allow(`) is.
    if !rest.trim_start().starts_with(':') && !text.contains("allow(") {
        return AllowParse::NotAnAnnotation;
    }
    let Some(rest) = rest.trim_start().strip_prefix(':') else {
        return AllowParse::Malformed(format!("expected `:` after `{MARKER}` in annotation"));
    };
    let Some(rest) = rest.trim_start().strip_prefix("allow(") else {
        return AllowParse::Malformed(format!(
            "expected `allow(<rule>)` after `{MARKER}:` in annotation"
        ));
    };
    let Some(close) = rest.find(')') else {
        return AllowParse::Malformed("unclosed `allow(` in annotation".to_owned());
    };
    let rule_name = rest[..close].trim();
    let Some(rule) = Rule::from_name(rule_name) else {
        return AllowParse::Malformed(format!(
            "annotation names unknown rule `{rule_name}` (known: {})",
            Rule::ALL.map(Rule::name).join(", ")
        ));
    };
    if !rule.suppressible() {
        return AllowParse::Malformed(format!(
            "rule `{rule_name}` is structural and cannot be suppressed inline"
        ));
    }
    let reason = rest[close + 1..].trim_start();
    let reason = reason
        .strip_prefix('—')
        .or_else(|| reason.strip_prefix('–'))
        .or_else(|| reason.strip_prefix('-'))
        .or_else(|| reason.strip_prefix(':'));
    match reason {
        Some(r) if !r.trim().is_empty() => AllowParse::Valid(rule),
        _ => AllowParse::Malformed(format!(
            "suppression of `{rule_name}` needs a reason: `allow({rule_name}) — <why>`"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(source: &str, scope: FileScope) -> Vec<Diagnostic> {
        check_file(Path::new("fixture.rs"), &lex(source), &scope)
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    const ALL_SCOPES: FileScope = FileScope {
        deterministic: true,
        panic_free: true,
        channel_discipline: true,
        crate_root: false,
    };

    #[test]
    fn deterministic_scope_flags_hash_collections_and_clocks() {
        let source = "
            use std::collections::HashMap;
            fn f() {
                let t = std::time::Instant::now();
                std::thread::sleep(d);
            }
        ";
        let diags = check(
            source,
            FileScope {
                deterministic: true,
                ..FileScope::default()
            },
        );
        assert_eq!(
            rules_of(&diags),
            vec![Rule::HashCollection, Rule::WallClock, Rule::WallClock]
        );
    }

    #[test]
    fn panic_scope_flags_methods_and_macros_but_not_lookalikes() {
        let source = "
            fn f(x: Option<u8>) -> u8 {
                let a = x.unwrap();
                let b = x.expect(\"msg\");
                assert!(a == b);
                panic!(\"boom\");
            }
            fn fine(x: Option<u8>) -> u8 {
                debug_assert!(true);
                x.unwrap_or_else(|| 0)
            }
        ";
        let diags = check(
            source,
            FileScope {
                panic_free: true,
                ..FileScope::default()
            },
        );
        assert_eq!(
            rules_of(&diags),
            vec![Rule::Panic, Rule::Panic, Rule::Panic, Rule::Panic]
        );
    }

    #[test]
    fn channel_rule_distinguishes_calls_from_fields() {
        let source = "
            fn bad() {
                let (tx, rx) = std::sync::mpsc::channel();
                let (a, b) = channel::<u32>();
            }
            fn fine(channel: impl Fn(), c: Channel) {
                let (tx, rx) = std::sync::mpsc::sync_channel(4);
                c.channel();
            }
            struct S { channel: u8 }
        ";
        let diags = check(
            source,
            FileScope {
                channel_discipline: true,
                ..FileScope::default()
            },
        );
        assert_eq!(
            rules_of(&diags),
            vec![Rule::UnboundedChannel, Rule::UnboundedChannel]
        );
    }

    #[test]
    fn test_code_is_exempt_from_every_rule() {
        let source = "
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() {
                    let (tx, rx) = std::sync::mpsc::channel();
                    tx.send(std::time::Instant::now()).unwrap();
                }
            }
        ";
        assert!(check(source, ALL_SCOPES).is_empty());
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let source = "
            // HashMap, Instant, unwrap(), mpsc::channel() — prose only
            fn f() -> &'static str { \"HashMap.unwrap() channel()\" }
        ";
        assert!(check(source, ALL_SCOPES).is_empty());
    }

    #[test]
    fn a_reasoned_allow_suppresses_the_next_code_line() {
        let source = "
            fn f(x: Option<u8>) -> u8 {
                // rcc-lint: allow(panic) — the caller guarantees Some, and
                // this fixture needs a multi-line reason.
                x.unwrap()
            }
        ";
        assert!(check(
            source,
            FileScope {
                panic_free: true,
                ..FileScope::default()
            }
        )
        .is_empty());
    }

    #[test]
    fn an_allow_only_covers_one_code_line() {
        let source = "
            fn f(x: Option<u8>) -> u8 {
                // rcc-lint: allow(panic) — only the first line.
                let a = x.unwrap();
                a + x.unwrap()
            }
        ";
        let diags = check(
            source,
            FileScope {
                panic_free: true,
                ..FileScope::default()
            },
        );
        assert_eq!(rules_of(&diags), vec![Rule::Panic]);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn malformed_allows_are_findings() {
        for (source, expect_msg) in [
            ("// rcc-lint: allow(panic)\nfn f() {}", "needs a reason"),
            (
                "// rcc-lint: allow(panic) —   \nfn f() {}",
                "needs a reason",
            ),
            (
                "// rcc-lint: allow(no-such-rule) — x\nfn f() {}",
                "unknown rule",
            ),
            (
                "// rcc-lint: allow(wire-symmetry) — x\nfn f() {}",
                "structural",
            ),
            (
                "// rcc-lint: allow panic — x\nfn f() {}",
                "expected `allow(<rule>)`",
            ),
            ("// rcc-lint allow(panic) — x\nfn f() {}", "expected `:`"),
        ] {
            let diags = check(source, FileScope::default());
            assert_eq!(rules_of(&diags), vec![Rule::AllowSyntax], "{source}");
            assert!(
                diags[0].message.contains(expect_msg),
                "{}",
                diags[0].message
            );
        }
    }

    #[test]
    fn prose_mentions_of_the_tool_are_not_annotations() {
        let source = "// run the rcc-lint binary before pushing\nfn f() {}";
        assert!(check(source, ALL_SCOPES).is_empty());
    }

    #[test]
    fn crate_roots_must_forbid_unsafe() {
        let missing = check(
            "pub fn f() {}",
            FileScope {
                crate_root: true,
                ..FileScope::default()
            },
        );
        assert_eq!(rules_of(&missing), vec![Rule::ForbidUnsafe]);
        let present = check(
            "#![forbid(unsafe_code)]\npub fn f() {}",
            FileScope {
                crate_root: true,
                ..FileScope::default()
            },
        );
        assert!(present.is_empty());
    }
}
