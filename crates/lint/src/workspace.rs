//! Workspace discovery: which files exist, which rule scopes apply to
//! each, and the one-call [`analyze_workspace`] entry point the binary and
//! the integration tests share.
//!
//! Scope policy (the project invariants, spelled as paths):
//!
//! * **Deterministic layers** — `crates/{rcc-core, execution, storage,
//!   sim, protocols}`: these run identically on every replica, so hash
//!   collections and wall-clock reads are banned there.
//! * **Panic-free deployment path** — all of `crates/network/src` (the
//!   node runner, transports, the client-edge event loop and fleet
//!   driver, and the binary) plus the codec
//!   (`crates/common/src/codec.rs`), the worker pool
//!   (`crates/common/src/pool.rs`), the crypto pipeline
//!   (`crates/crypto/src/pipeline.rs`), and the client driver session
//!   (`crates/workload/src/session.rs`).
//! * **Channel discipline and annotation syntax** — every first-party
//!   source file.
//! * **`#![forbid(unsafe_code)]`** — every crate root, including the
//!   vendored `third_party/` stand-ins and the root facade crate.
//!
//! Only `src/` trees are scanned: integration tests and benches are
//! harness code, exempt for the same reason `#[cfg(test)]` modules are.

use crate::lexer::{lex, LexedFile};
use crate::rules::{check_file, FileScope};
use crate::wire::{self, WireGrammar};
use crate::Diagnostic;
use std::io;
use std::path::{Path, PathBuf};

/// Crate directories under `crates/` whose code must be deterministic.
const DETERMINISTIC_CRATES: [&str; 5] = ["execution", "protocols", "rcc-core", "sim", "storage"];

/// Individual files on the panic-free deployment path (beyond the network
/// crate, which is covered wholesale — including its client-edge event
/// loop and fan-out fleet driver).
const PANIC_FREE_FILES: [&str; 4] = [
    "crates/common/src/codec.rs",
    "crates/common/src/pool.rs",
    "crates/crypto/src/pipeline.rs",
    // The §III-E driver session is sans-io workload code, but every
    // deployed client embedding (thread-per-client and fleet) runs it.
    "crates/workload/src/session.rs",
];

/// The telemetry crate's clock seam — the one file in `crates/telemetry`
/// allowed to touch `std::time`. Everything else in that crate is
/// instrumentation shared with the deterministic layers, so it carries the
/// deterministic scope; the whole crate rides the deployment path (metrics
/// are recorded inside the node pipeline and the client edge), so it is
/// panic-free throughout.
const TELEMETRY_CLOCK_SEAM: &str = "crates/telemetry/src/clock.rs";

/// The result of one whole-workspace analysis pass.
pub struct Analysis {
    /// Every finding, sorted by file and line. Includes the wire symmetry
    /// and uniqueness checks, but not the doc-drift check (that one needs
    /// the caller's decision about reading vs. writing the doc).
    pub diagnostics: Vec<Diagnostic>,
    /// The extracted wire grammar, for doc generation and drift checks.
    pub grammar: WireGrammar,
    /// How many source files were scanned.
    pub files_scanned: usize,
}

/// Walks upward from `start` to the directory that holds both a
/// `Cargo.toml` and a `crates/` tree — the workspace root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(current) = dir {
        if current.join("Cargo.toml").is_file() && current.join("crates").is_dir() {
            return Some(current.to_path_buf());
        }
        dir = current.parent();
    }
    None
}

/// Lints every in-scope file under `root` and extracts the wire grammar.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut diagnostics = Vec::new();
    let mut wire_files: Vec<(PathBuf, LexedFile)> = Vec::new();
    let mut files_scanned = 0usize;

    for rel in collect_sources(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let lexed = lex(&source);
        let scope = scope_for(&rel);
        diagnostics.extend(check_file(&rel, &lexed, &scope));
        files_scanned += 1;
        if in_wire_scope(&rel) {
            wire_files.push((rel, lexed));
        }
    }

    let grammar = wire::extract(
        wire_files
            .iter()
            .map(|(path, lexed)| (path.as_path(), lexed)),
    );
    diagnostics.extend(grammar.check());
    diagnostics.sort();
    Ok(Analysis {
        diagnostics,
        grammar,
        files_scanned,
    })
}

/// Every in-scope source file, as sorted workspace-relative paths.
fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for crate_dir in sorted_dirs(&root.join("crates"))? {
        let src = crate_dir.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, &mut files)?;
    }
    for vendored in sorted_dirs(&root.join("third_party"))? {
        let lib = vendored.join("src").join("lib.rs");
        if lib.is_file() {
            files.push(lib);
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|path| path.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect();
    rel.sort();
    Ok(rel)
}

fn sorted_dirs(parent: &Path) -> io::Result<Vec<PathBuf>> {
    if !parent.is_dir() {
        return Ok(Vec::new());
    }
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(parent)?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.is_dir())
        .collect();
    dirs.sort();
    Ok(dirs)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The crate directory name of a `crates/<dir>/…` path.
fn crate_dir(rel: &Path) -> Option<&str> {
    let mut components = rel.components();
    match components.next()?.as_os_str().to_str()? {
        "crates" => components.next()?.as_os_str().to_str(),
        _ => None,
    }
}

/// Maps a workspace-relative path to the rule scopes that govern it.
pub fn scope_for(rel: &Path) -> FileScope {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    if rel_str.starts_with("third_party/") {
        return FileScope {
            crate_root: rel_str.ends_with("/src/lib.rs"),
            ..FileScope::default()
        };
    }
    let dir = crate_dir(rel);
    FileScope {
        deterministic: dir.is_some_and(|d| DETERMINISTIC_CRATES.contains(&d))
            || (dir == Some("telemetry") && rel_str != TELEMETRY_CLOCK_SEAM),
        panic_free: dir == Some("network")
            || dir == Some("telemetry")
            || PANIC_FREE_FILES.contains(&rel_str.as_str()),
        channel_discipline: true,
        crate_root: rel_str == "src/lib.rs"
            || dir.is_some_and(|d| rel_str == format!("crates/{d}/src/lib.rs")),
    }
}

/// Wire extraction covers every first-party source file; the vendored
/// third-party crates speak serde, not the canonical codec.
fn in_wire_scope(rel: &Path) -> bool {
    !rel.starts_with("third_party")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_map_paths_to_the_project_policy() {
        let core = scope_for(Path::new("crates/rcc-core/src/replica.rs"));
        assert!(core.deterministic && !core.panic_free && core.channel_discipline);

        let node = scope_for(Path::new("crates/network/src/node.rs"));
        assert!(node.panic_free && !node.deterministic);
        let node_bin = scope_for(Path::new("crates/network/src/bin/rcc-node.rs"));
        assert!(node_bin.panic_free);
        // The client-edge event loop and fleet driver ride the network
        // crate's wholesale coverage; the driver session is listed
        // individually.
        let edge = scope_for(Path::new("crates/network/src/event_loop.rs"));
        assert!(edge.panic_free);
        let fleet = scope_for(Path::new("crates/network/src/fleet.rs"));
        assert!(fleet.panic_free);
        let session = scope_for(Path::new("crates/workload/src/session.rs"));
        assert!(session.panic_free && !session.deterministic);
        let client = scope_for(Path::new("crates/workload/src/client.rs"));
        assert!(!client.panic_free);

        let codec = scope_for(Path::new("crates/common/src/codec.rs"));
        assert!(codec.panic_free && !codec.deterministic);
        let other_common = scope_for(Path::new("crates/common/src/config.rs"));
        assert!(!other_common.panic_free);

        let bench = scope_for(Path::new("crates/bench/src/lib.rs"));
        assert!(!bench.deterministic && !bench.panic_free && bench.crate_root);

        let vendored = scope_for(Path::new("third_party/serde/src/lib.rs"));
        assert!(vendored.crate_root && !vendored.channel_discipline);

        let facade = scope_for(Path::new("src/lib.rs"));
        assert!(facade.crate_root && facade.channel_discipline);

        // The telemetry crate: panic-free throughout, deterministic
        // everywhere except the clock seam (the one sanctioned
        // `std::time` site).
        let telemetry = scope_for(Path::new("crates/telemetry/src/lib.rs"));
        assert!(telemetry.deterministic && telemetry.panic_free && telemetry.crate_root);
        let flight = scope_for(Path::new("crates/telemetry/src/flight.rs"));
        assert!(flight.deterministic && flight.panic_free);
        let seam = scope_for(Path::new("crates/telemetry/src/clock.rs"));
        assert!(!seam.deterministic && seam.panic_free);
    }

    /// Fixture: a panic-family call in telemetry scope is a finding —
    /// recording a metric must never be able to crash the layer being
    /// measured.
    #[test]
    fn telemetry_scope_flags_panics() {
        let rel = Path::new("crates/telemetry/src/flight.rs");
        let lexed =
            crate::lexer::lex("fn f(m: &std::sync::Mutex<u8>) -> u8 { *m.lock().unwrap() }");
        let diagnostics = check_file(rel, &lexed, &scope_for(rel));
        assert!(
            diagnostics.iter().any(|d| d.rule == crate::Rule::Panic),
            "unwrap in telemetry scope must be flagged: {diagnostics:?}"
        );
    }

    /// Fixture: a wall-clock read outside the clock seam is a finding; the
    /// identical source *inside* `clock.rs` is clean. This is the gate that
    /// keeps sim-side instrumentation bit-deterministic.
    #[test]
    fn telemetry_wall_clock_gate_exempts_only_the_clock_seam() {
        let source = "fn now() -> std::time::Instant { Instant::now() }";
        let lexed = crate::lexer::lex(source);

        let outside = Path::new("crates/telemetry/src/lib.rs");
        let diagnostics = check_file(outside, &lexed, &scope_for(outside));
        assert!(
            diagnostics.iter().any(|d| d.rule == crate::Rule::WallClock),
            "Instant outside the clock seam must be flagged: {diagnostics:?}"
        );

        let seam = Path::new("crates/telemetry/src/clock.rs");
        let diagnostics = check_file(seam, &lexed, &scope_for(seam));
        assert!(
            !diagnostics.iter().any(|d| d.rule == crate::Rule::WallClock),
            "the clock seam is the sanctioned std::time site: {diagnostics:?}"
        );
    }

    #[test]
    fn the_lint_crate_finds_its_own_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("inside the workspace");
        assert!(root.join("crates").join("lint").is_dir());
    }
}
