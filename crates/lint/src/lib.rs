//! `rcc-lint` — the workspace invariant analyzer.
//!
//! The RCC reproduction rests on a handful of invariants that `rustc` and
//! clippy cannot see because they are *project* properties, not language
//! properties:
//!
//! * **Determinism** — the replicated layers (`rcc-core`, `execution`,
//!   `storage`, `sim`, `protocols`) must be bit-identical across replicas,
//!   so nondeterministic iteration (`HashMap`/`HashSet`) and wall-clock
//!   reads (`Instant`, `SystemTime`, `thread::sleep`) are banned there.
//! * **Panic-freedom** — the deployment path (the `network` crate, the
//!   canonical codec, the crypto pipeline, the worker pool) must turn bad
//!   input into typed errors, never into a crashed replica.
//! * **Wire-format conformance** — every tagged type's encode and decode
//!   sides must agree, tags must be unique, and the human-readable
//!   `docs/WIRE_FORMAT.md` must match what the code actually does.
//! * **Hygiene** — every crate forbids `unsafe`, and channels outside
//!   tests are bounded (`sync_channel`) so back-pressure is explicit.
//!
//! The analyzer is dependency-free by design: the build environment has no
//! registry access, so it ships its own comment- and string-aware Rust
//! lexer ([`lexer`]) and matches invariants on the token stream. That makes
//! it a *lint*, not a verifier — it errs toward simple, reviewable rules
//! with an explicit, reasoned escape hatch (see [`rules`]) rather than
//! whole-program analysis.
//!
//! See `docs/LINTS.md` for the rule catalog and the suppression syntax.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod wire;
pub mod workspace;

use std::fmt;
use std::path::PathBuf;

/// The rule families the analyzer enforces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// `HashMap`/`HashSet` in a deterministic layer: iteration order is
    /// arbitrary, and anything that iterates such a map can diverge across
    /// replicas.
    HashCollection,
    /// `Instant`, `SystemTime`, or `thread::sleep` in a deterministic
    /// layer: replicas reading their own clocks diverge.
    WallClock,
    /// `unwrap`/`expect`/`panic!`-family calls on the deployment path: bad
    /// input must become a typed error, not a crashed replica.
    Panic,
    /// `mpsc::channel()` outside tests: unbounded queues hide back-pressure
    /// until a replica dies of memory exhaustion.
    UnboundedChannel,
    /// A crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// A malformed or unreasoned suppression annotation.
    AllowSyntax,
    /// A wire-format type whose encode and decode tag maps disagree.
    WireSymmetry,
    /// A wire-format type assigning one tag to two variants (or two tags to
    /// one variant) on the same side.
    WireUniqueTags,
    /// `docs/WIRE_FORMAT.md` does not match the grammar extracted from the
    /// code.
    WireDocDrift,
}

impl Rule {
    /// Every rule, in severity-agnostic catalog order.
    pub const ALL: [Rule; 9] = [
        Rule::HashCollection,
        Rule::WallClock,
        Rule::Panic,
        Rule::UnboundedChannel,
        Rule::ForbidUnsafe,
        Rule::AllowSyntax,
        Rule::WireSymmetry,
        Rule::WireUniqueTags,
        Rule::WireDocDrift,
    ];

    /// The kebab-case rule id used in diagnostics and suppressions.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashCollection => "hash-collection",
            Rule::WallClock => "wall-clock",
            Rule::Panic => "panic",
            Rule::UnboundedChannel => "unbounded-channel",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::AllowSyntax => "allow-syntax",
            Rule::WireSymmetry => "wire-symmetry",
            Rule::WireUniqueTags => "wire-unique-tags",
            Rule::WireDocDrift => "wire-doc-drift",
        }
    }

    /// Looks a rule up by its kebab-case id.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|rule| rule.name() == name)
    }

    /// Whether a line annotation may suppress this rule. Only the per-line
    /// source rules are suppressible; structural rules (missing forbid,
    /// wire drift) have no meaningful single-line escape hatch.
    pub fn suppressible(self) -> bool {
        matches!(
            self,
            Rule::HashCollection | Rule::WallClock | Rule::Panic | Rule::UnboundedChannel
        )
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: a rule violated at a source location.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Diagnostic {
    /// Path of the offending file, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line of the finding.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The trimmed source line, for context.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )?;
        if !self.snippet.is_empty() {
            write!(f, "\n    | {}", self.snippet)?;
        }
        Ok(())
    }
}

pub use rules::{check_file, FileScope};
pub use workspace::{analyze_workspace, find_workspace_root, Analysis};
