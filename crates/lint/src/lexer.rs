//! A comment- and string-aware Rust lexer, plus the two source-shape
//! analyses every rule needs: which tokens belong to test-only code, and
//! which line comments exist (the rule layer parses allow-annotations out
//! of them).
//!
//! This is not a full Rust parser — it is exactly the subset the invariant
//! rules require: a token stream with line numbers in which string/char
//! literals, lifetimes, raw strings, raw identifiers, and (nested) comments
//! can never be mistaken for code. Everything downstream (token-sequence
//! rules, wire-grammar extraction) works on [`LexedFile`].

use std::fmt;

/// What a token is, at the granularity the rules care about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `HashMap`, `r#type`).
    Ident,
    /// A numeric literal (`0`, `0xFF`, `1_000u64`, `2.5`).
    Number,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`.`, `:`, `!`, `{`, …).
    Punct,
}

/// One lexed token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// The token text. For raw identifiers the `r#` prefix is stripped so
    /// rules compare against the bare name; string/char literals keep their
    /// quotes.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
}

impl Token {
    /// True when the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True when the token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == ch.len_utf8() && {
            let mut chars = self.text.chars();
            chars.next() == Some(ch)
        }
    }

    /// The numeric value of a `Number` token, when it is an integer literal
    /// (handles `_` separators, `0x`/`0o`/`0b` prefixes, and type
    /// suffixes).
    pub fn int_value(&self) -> Option<u64> {
        if self.kind != TokenKind::Number {
            return None;
        }
        let text: String = self.text.chars().filter(|&c| c != '_').collect();
        let (digits, radix) = if let Some(hex) = text.strip_prefix("0x") {
            (hex, 16)
        } else if let Some(oct) = text.strip_prefix("0o") {
            (oct, 8)
        } else if let Some(bin) = text.strip_prefix("0b") {
            (bin, 2)
        } else {
            (text.as_str(), 10)
        };
        // Strip a type suffix (`u8`, `i64`, `usize`, …). Suffixes start at
        // the first character that is not a digit of the radix.
        let end = digits
            .char_indices()
            .find(|(_, c)| !c.is_digit(radix))
            .map(|(i, _)| i)
            .unwrap_or(digits.len());
        if end == 0 {
            return None;
        }
        u64::from_str_radix(&digits[..end], radix).ok()
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// One `//` comment, kept out of the token stream but retained for
/// annotation parsing.
#[derive(Clone, Debug)]
pub struct LineComment {
    /// 1-based source line.
    pub line: usize,
    /// Comment text after the `//` (or `///`, `//!`) marker, untrimmed.
    pub text: String,
}

/// A lexed source file: tokens, line comments, per-token test mask, and the
/// raw lines (for diagnostic snippets).
#[derive(Clone, Debug, Default)]
pub struct LexedFile {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Every `//` comment in the file.
    pub comments: Vec<LineComment>,
    /// `in_test[i]` is true when token `i` sits inside a `#[test]` item or
    /// a `#[cfg(test)]`-gated item (typically `mod tests { … }`).
    pub in_test: Vec<bool>,
    /// The raw source lines (for `file:line` snippets in diagnostics).
    pub lines: Vec<String>,
}

impl LexedFile {
    /// The trimmed source text of 1-based `line`, for diagnostics.
    pub fn snippet(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.trim())
            .unwrap_or("")
    }
}

/// Lexes `source` into tokens, comments, and the test-code mask.
pub fn lex(source: &str) -> LexedFile {
    let mut lx = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
        comments: Vec::new(),
    };
    lx.run();
    let in_test = test_mask(&lx.tokens);
    LexedFile {
        tokens: lx.tokens,
        comments: lx.comments,
        in_test,
        lines: source.lines().map(str::to_owned).collect(),
    }
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
    comments: Vec<LineComment>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    let text = self.string_literal();
                    self.push(TokenKind::Str, text, line);
                }
                'r' | 'b' if self.literal_prefix().is_some() => {
                    let kind = self.literal_prefix().unwrap_or(TokenKind::Str);
                    let text = match kind {
                        TokenKind::Char => self.char_or_byte_literal(),
                        _ => self.raw_or_byte_string(),
                    };
                    self.push(kind, text, line);
                }
                '\'' => self.lifetime_or_char(line),
                c if c.is_ascii_digit() => {
                    let text = self.number();
                    self.push(TokenKind::Number, text, line);
                }
                c if c.is_alphabetic() || c == '_' => {
                    let text = self.ident();
                    self.push(TokenKind::Ident, text, line);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
    }

    /// When the cursor sits on `r`/`b`/`br` starting a literal, the literal
    /// kind; `None` when it is a plain identifier (or a raw identifier).
    fn literal_prefix(&self) -> Option<TokenKind> {
        match (self.peek(0), self.peek(1), self.peek(2)) {
            // r"…" or r#"…"# (but r#ident is a raw identifier).
            (Some('r'), Some('"'), _) => Some(TokenKind::Str),
            (Some('r'), Some('#'), Some('"' | '#')) => Some(TokenKind::Str),
            // b"…", br"…", br#"…"#, b'…'
            (Some('b'), Some('"'), _) => Some(TokenKind::Str),
            (Some('b'), Some('\''), _) => Some(TokenKind::Char),
            (Some('b'), Some('r'), Some('"' | '#')) => Some(TokenKind::Str),
            _ => None,
        }
    }

    fn line_comment(&mut self, line: usize) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(LineComment { line, text });
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string_literal(&mut self) -> String {
        let mut text = String::new();
        text.push('"');
        self.bump();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(escaped) = self.bump() {
                    text.push(escaped);
                }
                continue;
            }
            text.push(c);
            self.bump();
            if c == '"' {
                break;
            }
        }
        text
    }

    /// Consumes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` — any hash depth.
    fn raw_or_byte_string(&mut self) -> String {
        let mut text = String::new();
        // Prefix letters.
        while matches!(self.peek(0), Some('r' | 'b')) {
            let Some(c) = self.bump() else { break };
            text.push(c);
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // `b` or `r` that turned out not to start a string after all;
            // treat what we consumed as an identifier.
            return text;
        }
        text.push('"');
        self.bump();
        if hashes == 0 && text.starts_with('b') && !text.contains('r') {
            // b"…" is an ordinary (escaped) string body.
            while let Some(c) = self.peek(0) {
                if c == '\\' {
                    text.push(c);
                    self.bump();
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                    continue;
                }
                text.push(c);
                self.bump();
                if c == '"' {
                    break;
                }
            }
            return text;
        }
        // Raw body: ends at `"` followed by `hashes` hash marks.
        loop {
            match self.peek(0) {
                None => break,
                Some('"') => {
                    let closes = (0..hashes).all(|i| self.peek(1 + i) == Some('#'));
                    text.push('"');
                    self.bump();
                    if closes {
                        for _ in 0..hashes {
                            text.push('#');
                            self.bump();
                        }
                        break;
                    }
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        text
    }

    fn char_or_byte_literal(&mut self) -> String {
        let mut text = String::new();
        if self.peek(0) == Some('b') {
            text.push('b');
            self.bump();
        }
        text.push('\'');
        self.bump();
        match self.peek(0) {
            Some('\\') => {
                text.push('\\');
                self.bump();
                if let Some(escaped) = self.bump() {
                    text.push(escaped);
                }
            }
            Some(c) => {
                text.push(c);
                self.bump();
            }
            None => return text,
        }
        if self.peek(0) == Some('\'') {
            text.push('\'');
            self.bump();
        }
        text
    }

    /// `'` starts either a lifetime (`'a`, `'static`) or a char literal
    /// (`'x'`, `'\n'`). A lifetime is an identifier NOT followed by a
    /// closing quote.
    fn lifetime_or_char(&mut self, line: usize) {
        let next = self.peek(1);
        let is_lifetime =
            matches!(next, Some(c) if c.is_alphabetic() || c == '_') && self.peek(2) != Some('\'');
        if is_lifetime {
            let mut text = String::from("'");
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            let text = self.char_or_byte_literal();
            self.push(TokenKind::Char, text, line);
        }
    }

    fn number(&mut self) -> String {
        let mut text = String::new();
        // Integer part (covers 0x/0o/0b bodies too: hex digits and the
        // radix letters are all alphanumeric).
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: a dot followed by a digit (not `..` ranges, not
        // `1.max(…)` method calls).
        if self.peek(0) == Some('.') && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        text
    }

    fn ident(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '#' && text == "r" {
                // Raw identifier r#type: strip the prefix, keep the name.
                text.clear();
                self.bump();
            } else {
                break;
            }
        }
        text
    }
}

/// Marks every token inside a `#[test]` / `#[cfg(test)]`-gated item.
///
/// The extent of a gated item is the attribute itself, any further
/// attributes stacked after it, and then either the first `;` at bracket
/// depth zero (gated `use`/statement) or the matching `}` of the first `{`
/// (gated `mod`/`fn`/`impl` body).
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && matches!(tokens.get(i + 1), Some(t) if t.is_punct('[')) {
            if let Some(close) = matching_bracket(tokens, i + 1) {
                if is_test_attr(&tokens[i + 2..close]) {
                    // Swallow any further stacked attributes.
                    let mut k = close + 1;
                    while k < tokens.len()
                        && tokens[k].is_punct('#')
                        && matches!(tokens.get(k + 1), Some(t) if t.is_punct('['))
                    {
                        match matching_bracket(tokens, k + 1) {
                            Some(end) => k = end + 1,
                            None => break,
                        }
                    }
                    let end = item_end(tokens, k);
                    for flag in mask.iter_mut().take(end.min(tokens.len())).skip(i) {
                        *flag = true;
                    }
                    i = end;
                    continue;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// True for `#[test]`, `#[cfg(test)]`, and `#[cfg(any(test, …))]` attribute
/// bodies (the tokens between `[` and `]`).
fn is_test_attr(body: &[Token]) -> bool {
    match body.first() {
        Some(t) if t.is_ident("test") => body.len() == 1,
        Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Index just past the item starting at `start`: past the first `;` at
/// depth zero, or past the matching `}` of the first `{`.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0i64;
    let mut i = start;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return i + 1;
                    }
                }
                ";" if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len()
}

/// For an opening `[`/`(`/`{` at `open`, the index of its matching closer.
pub fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let (open_ch, close_ch) = match tokens.get(open)?.text.as_str() {
        "[" => ('[', ']'),
        "(" => ('(', ')'),
        "{" => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_ch) {
            depth += 1;
        } else if t.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_content() {
        let source = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block comment */
            let a = "HashMap in a string";
            let b = r#"HashMap in a raw "quoted" string"#;
            let c = b"HashMap bytes";
            let d = 'H';
        "##;
        assert!(!idents(source).iter().any(|i| i == "HashMap"));
    }

    #[test]
    fn lifetimes_do_not_eat_the_following_code() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x.unwrap() }");
        assert!(toks.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(
            toks.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            3
        );
    }

    #[test]
    fn raw_identifiers_lex_as_their_bare_name() {
        let toks = lex("let r#type = 1; let r = 2;");
        assert!(toks.tokens.iter().any(|t| t.is_ident("type")));
        assert!(toks.tokens.iter().any(|t| t.is_ident("r")));
    }

    #[test]
    fn numbers_and_lines_are_tracked() {
        let file = lex("let a = 0x2A;\nlet b = 1_000u64;\nlet c = 1..4;");
        let nums: Vec<(u64, usize)> = file
            .tokens
            .iter()
            .filter_map(|t| t.int_value().map(|v| (v, t.line)))
            .collect();
        assert_eq!(nums, vec![(42, 1), (1000, 2), (1, 3), (4, 3)]);
    }

    #[test]
    fn cfg_test_items_are_masked() {
        let source = "
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { y.unwrap(); }
            }
        ";
        let file = lex(source);
        let unwraps: Vec<bool> = file
            .tokens
            .iter()
            .zip(&file.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &masked)| masked)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn test_attribute_masks_only_its_item() {
        let source = "
            #[test]
            fn t() { y.unwrap(); }
            fn live() { x.unwrap(); }
        ";
        let file = lex(source);
        let unwraps: Vec<bool> = file
            .tokens
            .iter()
            .zip(&file.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &masked)| masked)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_test_use_statement_masks_to_the_semicolon() {
        let source = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}";
        let file = lex(source);
        let hashmap = file
            .tokens
            .iter()
            .position(|t| t.is_ident("HashMap"))
            .expect("lexed");
        assert!(file.in_test[hashmap]);
        let live = file
            .tokens
            .iter()
            .position(|t| t.is_ident("live"))
            .expect("lexed");
        assert!(!file.in_test[live]);
    }
}
