//! Wire-format grammar extraction and conformance checks.
//!
//! The canonical codec (`rcc_common::codec` and the `Encode`/`Decode`
//! impls spread across the workspace) assigns one tag byte per enum
//! variant. Those tags are the deployed protocol: renumbering one is a
//! silent compatibility break that no unit test of a single build can
//! catch. This module recovers the tag grammar from the token stream and
//! enforces three properties:
//!
//! * **symmetry** — for every tagged type, the encode side and the decode
//!   side assign the same tags to the same variants;
//! * **uniqueness** — no tag is assigned to two variants of one type (and
//!   no variant to two tags) on either side;
//! * **documentation** — `docs/WIRE_FORMAT.md` matches the extracted
//!   grammar byte for byte, so a tag change shows up as a reviewable doc
//!   diff in CI.
//!
//! Extraction is deliberately narrow, keyed to the codec's three concrete
//! idioms (anything else is invisible rather than misread):
//!
//! * encode impl bodies (`impl … Encode for T`) and `fn encode_frame`:
//!   a literal `out.push(N)` records tag `N` for the nearest preceding
//!   `Type::Variant` match-arm path;
//! * `fn kind_tag`: a `Type::Variant { .. } => N` arm records tag `N`;
//! * decode bodies: inside a `match input.u8()? { … }` region, an arm
//!   `N => Type::Variant …` records tag `N` — the path must follow the
//!   arrow immediately, so error arms (`tag => Err(…)`) and primitive arms
//!   (`0 => false`) never contribute.

use crate::lexer::{matching_bracket, LexedFile, Token, TokenKind};
use crate::{Diagnostic, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Which half of the codec a tag assignment was seen in.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Side {
    /// Seen on the encode side (`out.push(N)` / `kind_tag`).
    Encode,
    /// Seen on the decode side (`match input.u8()?` arm).
    Decode,
}

impl Side {
    fn label(self) -> &'static str {
        match self {
            Side::Encode => "encode",
            Side::Decode => "decode",
        }
    }
}

/// The extracted tag grammar of one tagged type.
#[derive(Clone, Debug, Default)]
pub struct TypeGrammar {
    /// `(variant, tag)` pairs seen on the encode side.
    pub encode: BTreeSet<(String, u64)>,
    /// `(variant, tag)` pairs seen on the decode side.
    pub decode: BTreeSet<(String, u64)>,
    /// Workspace-relative files the assignments were extracted from.
    pub files: BTreeSet<String>,
    /// First extraction site, used to anchor diagnostics.
    anchor: Option<(PathBuf, usize, String)>,
}

impl TypeGrammar {
    /// The canonical `(variant, tag)` table: the encode side, falling back
    /// to the decode side for types only seen one way.
    pub fn table(&self) -> &BTreeSet<(String, u64)> {
        if self.encode.is_empty() {
            &self.decode
        } else {
            &self.encode
        }
    }
}

/// The whole workspace's extracted wire grammar.
#[derive(Clone, Debug, Default)]
pub struct WireGrammar {
    /// Tagged types by name.
    pub types: BTreeMap<String, TypeGrammar>,
    /// Frame-header constants (`FRAME_MAGIC`, `WIRE_VERSION`,
    /// `MAX_FRAME_BYTES`) as `name → verbatim initializer tokens`.
    pub constants: BTreeMap<String, String>,
}

/// The frame-header constants the doc surfaces.
const HEADER_CONSTANTS: [&str; 3] = ["FRAME_MAGIC", "WIRE_VERSION", "MAX_FRAME_BYTES"];

/// Extracts the wire grammar from a set of lexed files (workspace-relative
/// path + lexed source).
pub fn extract<'a>(files: impl IntoIterator<Item = (&'a Path, &'a LexedFile)>) -> WireGrammar {
    let mut grammar = WireGrammar::default();
    for (path, file) in files {
        extract_file(&mut grammar, path, file);
    }
    grammar
}

fn extract_file(grammar: &mut WireGrammar, path: &Path, file: &LexedFile) {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        if file.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &tokens[i];
        // impl … Encode for T { … }
        if t.is_ident("Encode") && matches!(tokens.get(i + 1), Some(n) if n.is_ident("for")) {
            if let Some((start, end)) = body_after(tokens, i) {
                scan_pushes(grammar, path, file, start, end);
            }
        }
        // fn encode_frame(…) -> … { … }
        if t.is_ident("encode_frame")
            && matches!(i.checked_sub(1).and_then(|p| tokens.get(p)), Some(p) if p.is_ident("fn"))
        {
            if let Some((start, end)) = body_after(tokens, i) {
                scan_pushes(grammar, path, file, start, end);
            }
        }
        // fn kind_tag(…) -> u8 { … }
        if t.is_ident("kind_tag")
            && matches!(i.checked_sub(1).and_then(|p| tokens.get(p)), Some(p) if p.is_ident("fn"))
        {
            if let Some((start, end)) = body_after(tokens, i) {
                scan_arrow_tags(grammar, path, file, start, end);
            }
        }
        // match input.u8()? { … }
        if t.is_ident("match") && is_u8_match(tokens, i) {
            if let Some(end) = matching_bracket(tokens, i + 7) {
                scan_decode_arms(grammar, path, file, i + 8, end);
            }
        }
        // const FRAME_MAGIC: … = …;
        if t.is_ident("const") {
            if let Some(name) = tokens.get(i + 1) {
                if HEADER_CONSTANTS.contains(&name.text.as_str()) {
                    if let Some(value) = initializer_text(tokens, i + 2) {
                        grammar.constants.entry(name.text.clone()).or_insert(value);
                    }
                }
            }
        }
    }
}

/// `match` at `i` followed by exactly `input . u8 ( ) ? {`.
fn is_u8_match(tokens: &[Token], i: usize) -> bool {
    let want: [&dyn Fn(&Token) -> bool; 7] = [
        &|t| t.is_ident("input"),
        &|t| t.is_punct('.'),
        &|t| t.is_ident("u8"),
        &|t| t.is_punct('('),
        &|t| t.is_punct(')'),
        &|t| t.is_punct('?'),
        &|t| t.is_punct('{'),
    ];
    want.iter()
        .enumerate()
        .all(|(k, check)| matches!(tokens.get(i + 1 + k), Some(t) if check(t)))
}

/// The `{ … }` body starting at the first `{` after `i`: `(start, end)`
/// token indices just inside the braces.
fn body_after(tokens: &[Token], i: usize) -> Option<(usize, usize)> {
    let open = (i..tokens.len()).find(|&k| tokens[k].is_punct('{'))?;
    let close = matching_bracket(tokens, open)?;
    Some((open + 1, close))
}

/// An uppercase-initial identifier — the shape of a type or variant name.
fn is_type_ident(token: &Token) -> bool {
    token.kind == TokenKind::Ident && token.text.chars().next().is_some_and(|c| c.is_uppercase())
}

/// The `Type::Variant` path ending its match at index `k` (both segments
/// uppercase-initial, so `Digest::decode` and `Vec::new` never qualify).
fn path_at(tokens: &[Token], k: usize) -> Option<(String, String)> {
    let first = tokens.get(k)?;
    if !is_type_ident(first)
        || !matches!(tokens.get(k + 1), Some(t) if t.is_punct(':'))
        || !matches!(tokens.get(k + 2), Some(t) if t.is_punct(':'))
    {
        return None;
    }
    let second = tokens.get(k + 3)?;
    if !is_type_ident(second) {
        return None;
    }
    Some((first.text.clone(), second.text.clone()))
}

/// Encode idiom: `Type::Variant … => { out.push(N); … }` — a literal push
/// records the tag for the nearest preceding variant path.
fn scan_pushes(grammar: &mut WireGrammar, path: &Path, file: &LexedFile, start: usize, end: usize) {
    let tokens = &file.tokens;
    let mut last_path: Option<(String, String)> = None;
    let mut k = start;
    while k < end {
        if let Some(found) = path_at(tokens, k) {
            last_path = Some(found);
            k += 4;
            continue;
        }
        let is_literal_push = tokens[k].is_ident("push")
            && k >= 2
            && tokens[k - 1].is_punct('.')
            && tokens[k - 2].is_ident("out")
            && matches!(tokens.get(k + 1), Some(t) if t.is_punct('('));
        if is_literal_push {
            if let Some(tag) = tokens.get(k + 2).and_then(Token::int_value) {
                if let Some((type_name, variant)) = &last_path {
                    record(
                        grammar,
                        path,
                        file,
                        Side::Encode,
                        type_name.clone(),
                        variant.clone(),
                        tag,
                        tokens[k].line,
                    );
                }
            }
        }
        k += 1;
    }
}

/// `kind_tag` idiom: `Type::Variant { .. } => N`.
fn scan_arrow_tags(
    grammar: &mut WireGrammar,
    path: &Path,
    file: &LexedFile,
    start: usize,
    end: usize,
) {
    let tokens = &file.tokens;
    let mut last_path: Option<(String, String)> = None;
    let mut k = start;
    while k < end {
        if let Some(found) = path_at(tokens, k) {
            last_path = Some(found);
            k += 4;
            continue;
        }
        let is_arrow_to_literal =
            tokens[k].is_punct('=') && matches!(tokens.get(k + 1), Some(t) if t.is_punct('>'));
        if is_arrow_to_literal {
            if let Some(tag) = tokens.get(k + 2).and_then(Token::int_value) {
                if let Some((type_name, variant)) = last_path.take() {
                    record(
                        grammar,
                        path,
                        file,
                        Side::Encode,
                        type_name,
                        variant,
                        tag,
                        tokens[k + 2].line,
                    );
                }
            }
        }
        k += 1;
    }
}

/// Decode idiom: `N => Type::Variant …` — the path must follow the arrow
/// immediately, so `tag => Err(…)` and `0 => false` arms are invisible.
fn scan_decode_arms(
    grammar: &mut WireGrammar,
    path: &Path,
    file: &LexedFile,
    start: usize,
    end: usize,
) {
    let tokens = &file.tokens;
    for k in start..end {
        let Some(tag) = tokens[k].int_value() else {
            continue;
        };
        let is_arm = matches!(tokens.get(k + 1), Some(t) if t.is_punct('='))
            && matches!(tokens.get(k + 2), Some(t) if t.is_punct('>'));
        if !is_arm {
            continue;
        }
        if let Some((type_name, variant)) = path_at(tokens, k + 3) {
            record(
                grammar,
                path,
                file,
                Side::Decode,
                type_name,
                variant,
                tag,
                tokens[k].line,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn record(
    grammar: &mut WireGrammar,
    path: &Path,
    file: &LexedFile,
    side: Side,
    type_name: String,
    variant: String,
    tag: u64,
    line: usize,
) {
    let entry = grammar.types.entry(type_name).or_default();
    entry.files.insert(path.display().to_string());
    if entry.anchor.is_none() {
        entry.anchor = Some((path.to_path_buf(), line, file.snippet(line).to_owned()));
    }
    let table = match side {
        Side::Encode => &mut entry.encode,
        Side::Decode => &mut entry.decode,
    };
    table.insert((variant, tag));
}

/// The verbatim initializer tokens of a `const`, from its `=` to its `;`.
fn initializer_text(tokens: &[Token], from: usize) -> Option<String> {
    let eq = (from..tokens.len()).find(|&k| tokens[k].is_punct('='))?;
    let semi = (eq + 1..tokens.len()).find(|&k| tokens[k].is_punct(';'))?;
    let texts: Vec<&str> = tokens[eq + 1..semi]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    Some(texts.join(" "))
}

impl WireGrammar {
    /// Runs the symmetry and uniqueness checks over the extracted grammar.
    pub fn check(&self) -> Vec<Diagnostic> {
        let mut findings = Vec::new();
        for (type_name, grammar) in &self.types {
            let anchor = grammar.anchor.clone().unwrap_or_default();
            let mut push = |rule: Rule, message: String| {
                findings.push(Diagnostic {
                    file: anchor.0.clone(),
                    line: anchor.1,
                    rule,
                    message,
                    snippet: anchor.2.clone(),
                });
            };

            for (side, table) in [
                (Side::Encode, &grammar.encode),
                (Side::Decode, &grammar.decode),
            ] {
                let mut by_tag: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
                let mut by_variant: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
                for (variant, tag) in table {
                    by_tag.entry(*tag).or_default().push(variant);
                    by_variant.entry(variant).or_default().push(*tag);
                }
                for (tag, variants) in by_tag {
                    if variants.len() > 1 {
                        push(
                            Rule::WireUniqueTags,
                            format!(
                                "`{type_name}` assigns tag {tag} to {} on the {} side",
                                variants.join(" and "),
                                side.label()
                            ),
                        );
                    }
                }
                for (variant, tags) in by_variant {
                    if tags.len() > 1 {
                        let tags: Vec<String> = tags.iter().map(u64::to_string).collect();
                        push(
                            Rule::WireUniqueTags,
                            format!(
                                "`{type_name}::{variant}` carries tags {} on the {} side",
                                tags.join(" and "),
                                side.label()
                            ),
                        );
                    }
                }
            }

            if grammar.encode.is_empty() || grammar.decode.is_empty() {
                let (present, missing) = if grammar.encode.is_empty() {
                    (Side::Decode, Side::Encode)
                } else {
                    (Side::Encode, Side::Decode)
                };
                push(
                    Rule::WireSymmetry,
                    format!(
                        "`{type_name}` has a {} tag map but no recognizable {} side",
                        present.label(),
                        missing.label()
                    ),
                );
                continue;
            }
            for (variant, tag) in grammar.encode.difference(&grammar.decode) {
                push(
                    Rule::WireSymmetry,
                    format!(
                        "`{type_name}::{variant}` encodes as tag {tag}, but no decode arm \
                         maps tag {tag} back to it"
                    ),
                );
            }
            for (variant, tag) in grammar.decode.difference(&grammar.encode) {
                push(
                    Rule::WireSymmetry,
                    format!(
                        "`{type_name}::{variant}` decodes from tag {tag}, but the encode \
                         side never writes that tag for it"
                    ),
                );
            }
        }
        findings.sort();
        findings
    }

    /// Renders `docs/WIRE_FORMAT.md`. Output is deterministic (everything
    /// is sorted), so the doc can be diffed byte for byte in CI.
    pub fn render_doc(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "<!-- @generated by rcc-lint from the workspace's Encode/Decode impls. -->\n\
             <!-- Do not edit by hand; regenerate with: -->\n\
             <!--   cargo run -p rcc-lint -- --workspace --write-wire-doc -->\n\
             \n\
             # RCC wire format\n\
             \n\
             The tag grammar below is extracted from the code by `rcc-lint`; the\n\
             `--check-wire-doc` CI gate fails when this file and the code disagree,\n\
             so a renumbered tag always surfaces as a reviewable diff here.\n\
             \n\
             ## Frame header\n\
             \n\
             Every deployment frame is `magic (2 B) | version (1 B) | kind (1 B) |\n\
             body`; on a TCP stream each frame is additionally length-prefixed with\n\
             a big-endian `u32` capped at `MAX_FRAME_BYTES`.\n\
             \n\
             | constant | value |\n\
             |---|---|\n",
        );
        for name in HEADER_CONSTANTS {
            let value = self
                .constants
                .get(name)
                .map(String::as_str)
                .unwrap_or("(not found)");
            out.push_str(&format!("| `{name}` | `{value}` |\n"));
        }
        out.push_str(
            "\n\
             ## Primitives\n\
             \n\
             * Fixed-width integers (`u16`, `u32`, `u64`, `i64`) are big-endian.\n\
             * Byte strings and sequences carry a big-endian `u32` length prefix.\n\
             * `bool` is one byte, `0` or `1`.\n\
             * `Option<T>` is a tag byte (`0` = `None`, `1` = `Some`) followed by\n\
               the payload for `Some`.\n\
             \n\
             ## Tagged types\n\
             \n\
             One tag byte selects the variant; the variant's fields follow in\n\
             declaration order, each in its own canonical encoding.\n",
        );
        for (type_name, grammar) in &self.types {
            let files: Vec<&str> = grammar.files.iter().map(String::as_str).collect();
            out.push_str(&format!(
                "\n### `{type_name}`\n\nDefined in: `{}`\n\n| tag | variant |\n|---|---|\n",
                files.join("`, `")
            ));
            let mut rows: Vec<(u64, &str)> = grammar
                .table()
                .iter()
                .map(|(variant, tag)| (*tag, variant.as_str()))
                .collect();
            rows.sort();
            for (tag, variant) in rows {
                out.push_str(&format!("| {tag} | `{variant}` |\n"));
            }
        }
        out
    }

    /// Compares the rendered doc against the checked-in copy.
    pub fn check_doc(&self, doc_path: &Path, existing: Option<&str>) -> Vec<Diagnostic> {
        let rendered = self.render_doc();
        let Some(existing) = existing else {
            return vec![Diagnostic {
                file: doc_path.to_path_buf(),
                line: 1,
                rule: Rule::WireDocDrift,
                message: "docs/WIRE_FORMAT.md is missing; generate it with \
                          `cargo run -p rcc-lint -- --workspace --write-wire-doc`"
                    .to_owned(),
                snippet: String::new(),
            }];
        };
        if existing == rendered {
            return Vec::new();
        }
        let line = rendered
            .lines()
            .zip(existing.lines())
            .position(|(want, got)| want != got)
            .map(|i| i + 1)
            .unwrap_or_else(|| rendered.lines().count().min(existing.lines().count()) + 1);
        vec![Diagnostic {
            file: doc_path.to_path_buf(),
            line,
            rule: Rule::WireDocDrift,
            message: format!(
                "docs/WIRE_FORMAT.md no longer matches the code (first divergence at \
                 line {line}); regenerate with `cargo run -p rcc-lint -- --workspace \
                 --write-wire-doc` and review the diff"
            ),
            snippet: rendered.lines().nth(line - 1).unwrap_or("").to_owned(),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn grammar_of(source: &str) -> WireGrammar {
        let file = lex(source);
        extract([(Path::new("fixture.rs"), &file)])
    }

    const SYMMETRIC: &str = r#"
        impl Encode for Verdict {
            fn encode(&self, out: &mut Vec<u8>) {
                match self {
                    Verdict::Accept => out.push(0),
                    Verdict::Reject { code } => {
                        out.push(1);
                        code.encode(out);
                    }
                }
            }
        }
        impl Decode for Verdict {
            fn decode(input: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(match input.u8()? {
                    0 => Verdict::Accept,
                    1 => Verdict::Reject { code: u8::decode(input)? },
                    tag => return Err(WireError::InvalidTag { context: "Verdict", tag }),
                })
            }
        }
    "#;

    #[test]
    fn symmetric_codecs_extract_cleanly() {
        let grammar = grammar_of(SYMMETRIC);
        let verdict = &grammar.types["Verdict"];
        let expected: BTreeSet<(String, u64)> =
            [("Accept".to_owned(), 0), ("Reject".to_owned(), 1)]
                .into_iter()
                .collect();
        assert_eq!(verdict.encode, expected);
        assert_eq!(verdict.decode, expected);
        assert!(grammar.check().is_empty());
        // Error arms never register as variants.
        assert!(!grammar.types.contains_key("WireError"));
    }

    #[test]
    fn renumbering_a_decode_tag_breaks_symmetry() {
        let skewed = SYMMETRIC.replace("1 => Verdict::Reject", "2 => Verdict::Reject");
        let findings = grammar_of(&skewed).check();
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == Rule::WireSymmetry));
    }

    #[test]
    fn duplicate_tags_are_flagged() {
        let clashing = SYMMETRIC.replace("out.push(1);", "out.push(0);");
        let findings = grammar_of(&clashing).check();
        assert!(
            findings.iter().any(|f| f.rule == Rule::WireUniqueTags),
            "{findings:?}"
        );
    }

    #[test]
    fn kind_tag_arms_count_as_the_encode_side() {
        let source = r#"
            impl Frame {
                fn kind_tag(&self) -> u8 {
                    match self {
                        Frame::Hello { .. } => 0,
                        Frame::Data { .. } => 1,
                    }
                }
                fn decode_frame(input: &mut Reader<'_>) -> Result<Frame, WireError> {
                    Ok(match input.u8()? {
                        0 => Frame::Hello { peer: PeerKind::decode(input)? },
                        1 => Frame::Data { bytes: read_bytes(input)? },
                        tag => return Err(WireError::InvalidTag { context: "Frame", tag }),
                    })
                }
            }
        "#;
        let grammar = grammar_of(source);
        assert!(grammar.check().is_empty(), "{:?}", grammar.check());
        assert_eq!(grammar.types["Frame"].encode.len(), 2);
    }

    #[test]
    fn primitive_decode_arms_are_invisible() {
        let source = r#"
            impl Decode for bool {
                fn decode(input: &mut Reader<'_>) -> Result<Self, WireError> {
                    match input.u8()? {
                        0 => Ok(false),
                        1 => Ok(true),
                        tag => Err(WireError::InvalidTag { context: "bool", tag }),
                    }
                }
            }
        "#;
        assert!(grammar_of(source).types.is_empty());
    }

    #[test]
    fn header_constants_are_captured_verbatim() {
        let source =
            "pub const WIRE_VERSION: u8 = 1;\npub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;";
        let grammar = grammar_of(source);
        assert_eq!(grammar.constants["WIRE_VERSION"], "1");
        assert_eq!(grammar.constants["MAX_FRAME_BYTES"], "16 * 1024 * 1024");
    }

    #[test]
    fn the_rendered_doc_is_deterministic_and_checks_itself() {
        let grammar = grammar_of(SYMMETRIC);
        let doc = grammar.render_doc();
        assert_eq!(doc, grammar.render_doc());
        assert!(doc.contains("| 1 | `Reject` |"));
        assert!(grammar
            .check_doc(Path::new("docs/WIRE_FORMAT.md"), Some(&doc))
            .is_empty());
        let stale = doc.replace("| 1 | `Reject` |", "| 9 | `Reject` |");
        let findings = grammar.check_doc(Path::new("docs/WIRE_FORMAT.md"), Some(&stale));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::WireDocDrift);
        let missing = grammar.check_doc(Path::new("docs/WIRE_FORMAT.md"), None);
        assert_eq!(missing.len(), 1);
    }
}
