//! The `rcc-lint` binary: run the workspace invariant analyzer from the
//! command line (and from CI).
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O failure.

#![forbid(unsafe_code)]

use rcc_lint::{analyze_workspace, find_workspace_root};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
rcc-lint — workspace invariant analyzer for the RCC reproduction

USAGE:
    cargo run -p rcc-lint -- [OPTIONS]

OPTIONS:
    --workspace        Lint every in-scope workspace file (the default)
    --check-wire-doc   Also fail when docs/WIRE_FORMAT.md is stale
    --write-wire-doc   Regenerate docs/WIRE_FORMAT.md from the code
    --root <PATH>      Workspace root (default: walk up from the cwd)
    -h, --help         Show this help

RULES:
    hash-collection, wall-clock    determinism of the replicated layers
    panic                          panic-freedom of the deployment path
    unbounded-channel              bounded channels outside tests
    forbid-unsafe, allow-syntax    hygiene
    wire-symmetry, wire-unique-tags, wire-doc-drift
                                   wire-format conformance

See docs/LINTS.md for the rule catalog and the suppression syntax.
";

struct Options {
    root: Option<PathBuf>,
    check_wire_doc: bool,
    write_wire_doc: bool,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut options = Options {
        root: None,
        check_wire_doc: false,
        write_wire_doc: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--check-wire-doc" => options.check_wire_doc = true,
            "--write-wire-doc" => options.write_wire_doc = true,
            "--root" => match args.next() {
                Some(path) => options.root = Some(PathBuf::from(path)),
                None => return Err("--root needs a path".to_owned()),
            },
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Some(options))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(Some(options)) => options,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("rcc-lint: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = match options.root {
        Some(root) => root,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("rcc-lint: cannot read the current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!(
                        "rcc-lint: no workspace root (Cargo.toml + crates/) above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut analysis = match analyze_workspace(&root) {
        Ok(analysis) => analysis,
        Err(e) => {
            eprintln!("rcc-lint: failed to read the workspace: {e}");
            return ExitCode::from(2);
        }
    };

    let doc_rel = PathBuf::from("docs/WIRE_FORMAT.md");
    let doc_path = root.join(&doc_rel);
    if options.write_wire_doc {
        if let Err(e) = std::fs::write(&doc_path, analysis.grammar.render_doc()) {
            eprintln!("rcc-lint: cannot write {}: {e}", doc_path.display());
            return ExitCode::from(2);
        }
        println!("rcc-lint: wrote {}", doc_rel.display());
    } else if options.check_wire_doc {
        let existing = std::fs::read_to_string(&doc_path).ok();
        analysis
            .diagnostics
            .extend(analysis.grammar.check_doc(&doc_rel, existing.as_deref()));
        analysis.diagnostics.sort();
    }

    for diagnostic in &analysis.diagnostics {
        println!("{diagnostic}");
    }
    if analysis.diagnostics.is_empty() {
        println!(
            "rcc-lint: workspace clean — {} files, {} wire types",
            analysis.files_scanned,
            analysis.grammar.types.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "rcc-lint: {} finding(s) across {} files",
            analysis.diagnostics.len(),
            analysis.files_scanned
        );
        ExitCode::FAILURE
    }
}
