//! Checkpoint snapshots.
//!
//! Checkpoints serve two purposes in the paper: (1) the classical PBFT-style
//! periodic checkpoint lets baselines garbage-collect their logs and brings
//! in-the-dark replicas up to date, and (2) RCC performs *dynamic per-need*
//! checkpoints when `nf − f` failure claims arrive for a round that the local
//! replica has already finished (Section III-D). A checkpoint captures the
//! executed round, the ledger head, and the state fingerprints; a checkpoint
//! becomes *stable* once `f + 1` matching digests from distinct replicas are
//! collected.

use rcc_common::{Digest, ReplicaId, Round};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A snapshot of a replica's executed state after some round.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The last executed round covered by the snapshot.
    pub round: Round,
    /// Ledger head digest after executing that round.
    pub ledger_head: Digest,
    /// Fingerprint of the record table.
    pub table_fingerprint: u64,
    /// Fingerprint of the account store.
    pub accounts_fingerprint: u64,
}

impl Checkpoint {
    /// A digest summarizing the checkpoint, which is what replicas exchange
    /// and vote on.
    pub fn digest(&self) -> Digest {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&self.round.to_be_bytes());
        bytes[8..16].copy_from_slice(&self.table_fingerprint.to_be_bytes());
        bytes[16..24].copy_from_slice(&self.accounts_fingerprint.to_be_bytes());
        bytes[24..32].copy_from_slice(&self.ledger_head.as_bytes()[..8]);
        Digest::from_bytes(bytes)
    }
}

/// Collects checkpoint votes and tracks the latest stable checkpoint.
#[derive(Clone, Debug, Default)]
pub struct CheckpointStore {
    /// Votes per (round, checkpoint digest).
    votes: BTreeMap<(Round, Digest), BTreeSet<ReplicaId>>,
    /// Local checkpoints by round.
    local: BTreeMap<Round, Checkpoint>,
    /// Highest stable (quorum-certified) checkpoint.
    stable: Option<(Checkpoint, usize)>,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Records the local checkpoint for its round.
    pub fn record_local(&mut self, checkpoint: Checkpoint) {
        self.local.insert(checkpoint.round, checkpoint);
    }

    /// The local checkpoint taken at `round`, if any.
    pub fn local(&self, round: Round) -> Option<&Checkpoint> {
        self.local.get(&round)
    }

    /// Registers a vote from `replica` for a checkpoint digest at `round`.
    /// Returns the number of distinct votes for that digest.
    pub fn add_vote(&mut self, replica: ReplicaId, round: Round, digest: Digest) -> usize {
        let entry = self.votes.entry((round, digest)).or_default();
        entry.insert(replica);
        entry.len()
    }

    /// Marks a checkpoint stable once it has gathered `quorum` votes; returns
    /// `true` when this call made it stable (i.e. it was not already stable
    /// at an equal or higher round).
    pub fn try_stabilize(&mut self, checkpoint: &Checkpoint, quorum: usize) -> bool {
        let votes = self
            .votes
            .get(&(checkpoint.round, checkpoint.digest()))
            .map(|v| v.len())
            .unwrap_or(0);
        if votes < quorum {
            return false;
        }
        match &self.stable {
            Some((existing, _)) if existing.round >= checkpoint.round => false,
            _ => {
                self.stable = Some((checkpoint.clone(), votes));
                // Garbage-collect votes and local checkpoints at or below the
                // stable round.
                let stable_round = checkpoint.round;
                self.votes.retain(|(round, _), _| *round > stable_round);
                self.local.retain(|round, _| *round > stable_round);
                true
            }
        }
    }

    /// The highest stable checkpoint, if any.
    pub fn stable(&self) -> Option<&Checkpoint> {
        self.stable.as_ref().map(|(c, _)| c)
    }

    /// The round of the highest stable checkpoint (0 when none).
    pub fn stable_round(&self) -> Round {
        self.stable.as_ref().map(|(c, _)| c.round).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkpoint(round: Round, fp: u64) -> Checkpoint {
        Checkpoint {
            round,
            ledger_head: Digest::ZERO,
            table_fingerprint: fp,
            accounts_fingerprint: 0,
        }
    }

    #[test]
    fn checkpoint_digest_reflects_contents() {
        assert_ne!(checkpoint(1, 5).digest(), checkpoint(2, 5).digest());
        assert_ne!(checkpoint(1, 5).digest(), checkpoint(1, 6).digest());
        assert_eq!(checkpoint(1, 5).digest(), checkpoint(1, 5).digest());
    }

    #[test]
    fn stabilization_requires_a_quorum_of_distinct_votes() {
        let mut store = CheckpointStore::new();
        let cp = checkpoint(10, 42);
        store.record_local(cp.clone());
        assert_eq!(store.add_vote(ReplicaId(0), 10, cp.digest()), 1);
        assert_eq!(
            store.add_vote(ReplicaId(0), 10, cp.digest()),
            1,
            "duplicate vote ignored"
        );
        assert!(!store.try_stabilize(&cp, 3));
        store.add_vote(ReplicaId(1), 10, cp.digest());
        store.add_vote(ReplicaId(2), 10, cp.digest());
        assert!(store.try_stabilize(&cp, 3));
        assert_eq!(store.stable_round(), 10);
    }

    #[test]
    fn stale_checkpoints_do_not_replace_newer_stable_ones() {
        let mut store = CheckpointStore::new();
        let newer = checkpoint(20, 1);
        let older = checkpoint(10, 2);
        for r in 0..3 {
            store.add_vote(ReplicaId(r), 20, newer.digest());
            store.add_vote(ReplicaId(r), 10, older.digest());
        }
        assert!(store.try_stabilize(&newer, 3));
        assert!(!store.try_stabilize(&older, 3));
        assert_eq!(store.stable_round(), 20);
    }

    #[test]
    fn stabilization_garbage_collects_old_votes_and_locals() {
        let mut store = CheckpointStore::new();
        store.record_local(checkpoint(5, 9));
        store.record_local(checkpoint(10, 10));
        let cp = checkpoint(10, 10);
        for r in 0..3 {
            store.add_vote(ReplicaId(r), 10, cp.digest());
        }
        assert!(store.try_stabilize(&cp, 3));
        assert!(store.local(5).is_none());
        assert!(store.local(10).is_none());
    }

    #[test]
    fn votes_for_different_digests_do_not_mix() {
        let mut store = CheckpointStore::new();
        let a = checkpoint(10, 1);
        let b = checkpoint(10, 2);
        store.add_vote(ReplicaId(0), 10, a.digest());
        store.add_vote(ReplicaId(1), 10, b.digest());
        store.add_vote(ReplicaId(2), 10, b.digest());
        assert!(!store.try_stabilize(&a, 2));
        assert!(store.try_stabilize(&b, 2));
    }
}
