//! Checkpoint snapshots.
//!
//! Checkpoints serve two purposes in the paper: (1) the classical PBFT-style
//! periodic checkpoint lets baselines garbage-collect their logs and brings
//! in-the-dark replicas up to date, and (2) RCC performs *dynamic per-need*
//! checkpoints when `nf − f` failure claims arrive for a round that the local
//! replica has already finished (Section III-D). A checkpoint captures the
//! executed round, the ledger head, and the state fingerprints; a checkpoint
//! becomes *stable* once `f + 1` matching digests from distinct replicas are
//! collected.

use rcc_common::{Digest, ReplicaId, Round};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A snapshot of a replica's executed state after some round.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The last executed round covered by the snapshot.
    pub round: Round,
    /// Ledger head digest after executing that round.
    pub ledger_head: Digest,
    /// Fingerprint of the record table.
    pub table_fingerprint: u64,
    /// Fingerprint of the account store.
    pub accounts_fingerprint: u64,
    /// Estimated size in bytes of the bulk state a checkpoint *transfer*
    /// ships to a rejoining replica (the snapshot's records, not the digest
    /// metadata above). Purely an accounting figure for bandwidth models —
    /// it is derived deterministically from the executed history, and it is
    /// deliberately **excluded** from [`Checkpoint::digest`] so that it can
    /// never split a vote quorum.
    pub state_bytes: u64,
}

impl Checkpoint {
    /// A digest summarizing the checkpoint, which is what replicas exchange
    /// and vote on.
    pub fn digest(&self) -> Digest {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&self.round.to_be_bytes());
        bytes[8..16].copy_from_slice(&self.table_fingerprint.to_be_bytes());
        bytes[16..24].copy_from_slice(&self.accounts_fingerprint.to_be_bytes());
        bytes[24..32].copy_from_slice(&self.ledger_head.as_bytes()[..8]);
        Digest::from_bytes(bytes)
    }
}

impl rcc_common::Encode for Checkpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.round.encode(out);
        self.ledger_head.encode(out);
        self.table_fingerprint.encode(out);
        self.accounts_fingerprint.encode(out);
        self.state_bytes.encode(out);
    }
}

impl rcc_common::Decode for Checkpoint {
    fn decode(input: &mut rcc_common::Reader<'_>) -> Result<Self, rcc_common::WireError> {
        Ok(Checkpoint {
            round: input.u64()?,
            ledger_head: Digest::decode(input)?,
            table_fingerprint: input.u64()?,
            accounts_fingerprint: input.u64()?,
            state_bytes: input.u64()?,
        })
    }
}

/// How many local (not yet stable) checkpoints the store retains. An honest
/// replica only needs the most recent boundaries to stabilize; keeping a
/// small window bounds memory even when stabilization stalls (e.g. during a
/// long partition).
const LOCAL_CHECKPOINT_CAP: usize = 8;

/// Collects checkpoint votes and tracks the latest stable checkpoint.
///
/// Vote bookkeeping is bounded by construction: the store keeps at most one
/// vote per replica — a replica's checkpoint claims are monotone, so a vote
/// for a higher round replaces its earlier one, a vote for a lower round is
/// stale and ignored, and a *conflicting* digest for the same round (a
/// Byzantine equivocation) is ignored in favour of the first claim. A
/// flooding peer therefore occupies exactly one entry no matter how many
/// votes it sends.
#[derive(Clone, Debug, Default)]
pub struct CheckpointStore {
    /// Votes per (round, checkpoint digest).
    votes: BTreeMap<(Round, Digest), BTreeSet<ReplicaId>>,
    /// The vote currently held for each replica (its latest claim).
    voted: BTreeMap<ReplicaId, (Round, Digest)>,
    /// Local checkpoints by round.
    local: BTreeMap<Round, Checkpoint>,
    /// Highest stable (quorum-certified) checkpoint.
    stable: Option<(Checkpoint, usize)>,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Records the local checkpoint for its round, evicting the oldest
    /// retained local checkpoint beyond the cap.
    pub fn record_local(&mut self, checkpoint: Checkpoint) {
        self.local.insert(checkpoint.round, checkpoint);
        while self.local.len() > LOCAL_CHECKPOINT_CAP {
            self.local.pop_first();
        }
    }

    /// The local checkpoint taken at `round`, if any.
    pub fn local(&self, round: Round) -> Option<&Checkpoint> {
        self.local.get(&round)
    }

    /// Registers a vote from `replica` for a checkpoint digest at `round`.
    /// Returns the number of distinct votes currently held for that digest
    /// at that round. Stale votes (a round below the replica's recorded
    /// claim, or at or below the stable round) and same-round digest
    /// revisions are ignored; a vote for a higher round replaces the
    /// replica's earlier one.
    pub fn add_vote(&mut self, replica: ReplicaId, round: Round, digest: Digest) -> usize {
        let count_for = |votes: &BTreeMap<(Round, Digest), BTreeSet<ReplicaId>>| {
            votes.get(&(round, digest)).map(|v| v.len()).unwrap_or(0)
        };
        if round <= self.stable_round() && self.stable.is_some() {
            return count_for(&self.votes);
        }
        if let Some(&(held_round, held_digest)) = self.voted.get(&replica) {
            if round < held_round || (round == held_round && digest != held_digest) {
                return count_for(&self.votes);
            }
            if round == held_round {
                return count_for(&self.votes);
            }
            // The replica advanced: its earlier vote is superseded.
            if let Some(voters) = self.votes.get_mut(&(held_round, held_digest)) {
                voters.remove(&replica);
                if voters.is_empty() {
                    self.votes.remove(&(held_round, held_digest));
                }
            }
        }
        self.voted.insert(replica, (round, digest));
        let entry = self.votes.entry((round, digest)).or_default();
        entry.insert(replica);
        entry.len()
    }

    /// Marks a checkpoint stable once it has gathered `quorum` votes; returns
    /// `true` when this call made it stable (i.e. it was not already stable
    /// at an equal or higher round).
    pub fn try_stabilize(&mut self, checkpoint: &Checkpoint, quorum: usize) -> bool {
        let votes = self
            .votes
            .get(&(checkpoint.round, checkpoint.digest()))
            .map(|v| v.len())
            .unwrap_or(0);
        if votes < quorum {
            return false;
        }
        match &self.stable {
            Some((existing, _)) if existing.round >= checkpoint.round => false,
            _ => {
                self.stable = Some((checkpoint.clone(), votes));
                // Garbage-collect votes and local checkpoints at or below the
                // stable round.
                let stable_round = checkpoint.round;
                self.votes.retain(|(round, _), _| *round > stable_round);
                self.voted.retain(|_, (round, _)| *round > stable_round);
                self.local.retain(|round, _| *round > stable_round);
                true
            }
        }
    }

    /// The highest stable checkpoint, if any.
    pub fn stable(&self) -> Option<&Checkpoint> {
        self.stable.as_ref().map(|(c, _)| c)
    }

    /// The round of the highest stable checkpoint (0 when none).
    pub fn stable_round(&self) -> Round {
        self.stable.as_ref().map(|(c, _)| c.round).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkpoint(round: Round, fp: u64) -> Checkpoint {
        Checkpoint {
            round,
            ledger_head: Digest::ZERO,
            table_fingerprint: fp,
            accounts_fingerprint: 0,
            state_bytes: 0,
        }
    }

    #[test]
    fn checkpoint_digest_reflects_contents() {
        assert_ne!(checkpoint(1, 5).digest(), checkpoint(2, 5).digest());
        assert_ne!(checkpoint(1, 5).digest(), checkpoint(1, 6).digest());
        assert_eq!(checkpoint(1, 5).digest(), checkpoint(1, 5).digest());
    }

    #[test]
    fn stabilization_requires_a_quorum_of_distinct_votes() {
        let mut store = CheckpointStore::new();
        let cp = checkpoint(10, 42);
        store.record_local(cp.clone());
        assert_eq!(store.add_vote(ReplicaId(0), 10, cp.digest()), 1);
        assert_eq!(
            store.add_vote(ReplicaId(0), 10, cp.digest()),
            1,
            "duplicate vote ignored"
        );
        assert!(!store.try_stabilize(&cp, 3));
        store.add_vote(ReplicaId(1), 10, cp.digest());
        store.add_vote(ReplicaId(2), 10, cp.digest());
        assert!(store.try_stabilize(&cp, 3));
        assert_eq!(store.stable_round(), 10);
    }

    #[test]
    fn stale_checkpoints_do_not_replace_newer_stable_ones() {
        let mut store = CheckpointStore::new();
        let newer = checkpoint(20, 1);
        let older = checkpoint(10, 2);
        for r in 0..3 {
            store.add_vote(ReplicaId(r), 20, newer.digest());
            store.add_vote(ReplicaId(r), 10, older.digest());
        }
        assert!(store.try_stabilize(&newer, 3));
        assert!(!store.try_stabilize(&older, 3));
        assert_eq!(store.stable_round(), 20);
    }

    #[test]
    fn stabilization_garbage_collects_old_votes_and_locals() {
        let mut store = CheckpointStore::new();
        store.record_local(checkpoint(5, 9));
        store.record_local(checkpoint(10, 10));
        let cp = checkpoint(10, 10);
        for r in 0..3 {
            store.add_vote(ReplicaId(r), 10, cp.digest());
        }
        assert!(store.try_stabilize(&cp, 3));
        assert!(store.local(5).is_none());
        assert!(store.local(10).is_none());
    }

    #[test]
    fn a_replica_holds_at_most_one_vote() {
        let mut store = CheckpointStore::new();
        // A Byzantine flooder votes for many rounds and digests: only one
        // entry survives (its latest advancing claim), so the store cannot
        // be grown by message volume.
        for round in 1..100 {
            store.add_vote(ReplicaId(0), round, checkpoint(round, round).digest());
        }
        assert_eq!(store.votes.len(), 1, "one surviving (round, digest) entry");
        assert_eq!(store.voted.len(), 1);
        // Equivocating at the held round is ignored: the first claim wins.
        let held = checkpoint(99, 99);
        let conflicting = checkpoint(99, 1234);
        store.add_vote(ReplicaId(0), 99, conflicting.digest());
        assert_eq!(
            store.votes.get(&(99, held.digest())).map(|v| v.len()),
            Some(1),
            "the original claim is still held"
        );
        assert!(!store.votes.contains_key(&(99, conflicting.digest())));
    }

    #[test]
    fn advancing_votes_supersede_earlier_rounds() {
        let mut store = CheckpointStore::new();
        let early = checkpoint(10, 1);
        let late = checkpoint(20, 2);
        store.add_vote(ReplicaId(0), 10, early.digest());
        store.add_vote(ReplicaId(1), 10, early.digest());
        store.add_vote(ReplicaId(2), 10, early.digest());
        // Replica 0 advances to round 20: its round-10 vote is withdrawn.
        store.add_vote(ReplicaId(0), 20, late.digest());
        assert_eq!(
            store.votes.get(&(10, early.digest())).map(|v| v.len()),
            Some(2)
        );
        // Round 10 can still stabilize with the two remaining + a newcomer.
        store.record_local(early.clone());
        assert!(!store.try_stabilize(&early, 3));
        store.add_vote(ReplicaId(3), 10, early.digest());
        assert!(store.try_stabilize(&early, 3));
    }

    #[test]
    fn votes_for_different_digests_do_not_mix() {
        let mut store = CheckpointStore::new();
        let a = checkpoint(10, 1);
        let b = checkpoint(10, 2);
        store.add_vote(ReplicaId(0), 10, a.digest());
        store.add_vote(ReplicaId(1), 10, b.digest());
        store.add_vote(ReplicaId(2), 10, b.digest());
        assert!(!store.try_stabilize(&a, 2));
        assert!(store.try_stabilize(&b, 2));
    }
}
