//! The blockchain ledger (journal).
//!
//! "In ResilientDB, each replica maintains a blockchain ledger (a journal)
//! that holds an ordered copy of all executed transactions. The ledger not
//! only stores all transactions, but also proofs of their acceptance by a
//! consensus protocol." (Section V-B.) Each block here records one executed
//! RCC round (or one committed slot of a baseline protocol): the identities
//! and digests of the accepted batches, the execution order that was applied,
//! and the digest of the parent block, forming an immutable hash chain.

use rcc_common::{BatchId, Digest, Error, Result, Round};
use rcc_crypto::hash::{digest_bytes, digest_chain};
use serde::{Deserialize, Serialize};

/// One accepted batch recorded inside a block.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BlockEntry {
    /// The instance/round that accepted the batch.
    pub batch: BatchId,
    /// The digest certified by the commit quorum.
    pub digest: Digest,
    /// Number of client transactions in the batch.
    pub transactions: usize,
}

/// One block of the ledger: the outcome of executing one consensus round.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Block {
    /// Height of the block in the chain (genesis = 0 is implicit and empty).
    pub height: u64,
    /// The RCC round (or baseline sequence number) this block executes.
    pub round: Round,
    /// Digest of the previous block.
    pub parent: Digest,
    /// The accepted batches, in the order they were executed.
    pub entries: Vec<BlockEntry>,
    /// Digest of this block (over parent and entries).
    pub digest: Digest,
}

fn block_digest(height: u64, round: Round, parent: &Digest, entries: &[BlockEntry]) -> Digest {
    let mut bytes = Vec::with_capacity(48 + entries.len() * 56);
    bytes.extend_from_slice(&height.to_be_bytes());
    bytes.extend_from_slice(&round.to_be_bytes());
    for entry in entries {
        bytes.extend_from_slice(&entry.batch.instance.0.to_be_bytes());
        bytes.extend_from_slice(&entry.batch.round.to_be_bytes());
        bytes.extend_from_slice(entry.digest.as_bytes());
        bytes.extend_from_slice(&(entry.transactions as u64).to_be_bytes());
    }
    digest_chain(parent, &digest_bytes(&bytes))
}

impl Block {
    /// Digest over the block's round and ordered entries **without** the
    /// chain position (height and parent). Two replicas that executed the
    /// same round with the same ordered entries produce the same content
    /// digest even when their ledgers start at different rounds — e.g. a
    /// replica that rejoined from a checkpoint mid-history — which is what
    /// cross-replica ledger comparison needs.
    pub fn content_digest(&self) -> Digest {
        block_digest(0, self.round, &Digest::ZERO, &self.entries)
    }
}

/// An append-only hash-chained ledger.
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    blocks: Vec<Block>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Number of blocks in the ledger.
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Digest of the latest block, or the zero digest for an empty ledger.
    pub fn head_digest(&self) -> Digest {
        self.blocks.last().map(|b| b.digest).unwrap_or(Digest::ZERO)
    }

    /// Appends a block executing `round` with the given ordered entries.
    pub fn append(&mut self, round: Round, entries: Vec<BlockEntry>) -> &Block {
        let height = self.height();
        let parent = self.head_digest();
        let digest = block_digest(height, round, &parent, &entries);
        self.blocks.push(Block {
            height,
            round,
            parent,
            entries,
            digest,
        });
        self.blocks.last().expect("just pushed")
    }

    /// The block at `height`, if present.
    pub fn block(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height as usize)
    }

    /// Iterator over all blocks in order.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Total number of client transactions recorded in the ledger.
    pub fn total_transactions(&self) -> u64 {
        self.blocks
            .iter()
            .flat_map(|b| b.entries.iter())
            .map(|e| e.transactions as u64)
            .sum()
    }

    /// Verifies the hash chain and per-block digests, returning an error at
    /// the first inconsistency. An attacker that tampers with any block
    /// breaks every later digest, which is the immutability argument of the
    /// paper.
    pub fn verify(&self) -> Result<()> {
        let mut parent = Digest::ZERO;
        for (i, block) in self.blocks.iter().enumerate() {
            if block.height != i as u64 {
                return Err(Error::LedgerMismatch(format!(
                    "block at position {i} claims height {}",
                    block.height
                )));
            }
            if block.parent != parent {
                return Err(Error::LedgerMismatch(format!(
                    "block {i} parent digest mismatch"
                )));
            }
            let expected = block_digest(block.height, block.round, &block.parent, &block.entries);
            if expected != block.digest {
                return Err(Error::LedgerMismatch(format!("block {i} digest mismatch")));
            }
            parent = block.digest;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::InstanceId;

    fn entry(instance: u32, round: Round, txns: usize) -> BlockEntry {
        BlockEntry {
            batch: BatchId {
                instance: InstanceId(instance),
                round,
            },
            digest: digest_bytes(&[instance as u8, round as u8]),
            transactions: txns,
        }
    }

    #[test]
    fn appended_blocks_chain_and_verify() {
        let mut ledger = Ledger::new();
        ledger.append(0, vec![entry(0, 0, 100), entry(1, 0, 100)]);
        ledger.append(1, vec![entry(0, 1, 100)]);
        assert_eq!(ledger.height(), 2);
        assert_eq!(ledger.total_transactions(), 300);
        ledger.verify().expect("untampered ledger verifies");
        assert_eq!(
            ledger.block(1).unwrap().parent,
            ledger.block(0).unwrap().digest
        );
    }

    #[test]
    fn tampering_with_an_entry_is_detected() {
        let mut ledger = Ledger::new();
        ledger.append(0, vec![entry(0, 0, 100)]);
        ledger.append(1, vec![entry(0, 1, 100)]);
        // Tamper with the first block's entry count.
        ledger.blocks[0].entries[0].transactions = 1;
        assert!(ledger.verify().is_err());
    }

    #[test]
    fn tampering_with_the_chain_is_detected() {
        let mut ledger = Ledger::new();
        ledger.append(0, vec![entry(0, 0, 100)]);
        ledger.append(1, vec![entry(0, 1, 100)]);
        ledger.blocks[1].parent = Digest::ZERO;
        assert!(ledger.verify().is_err());
    }

    #[test]
    fn identical_histories_produce_identical_heads() {
        let mut a = Ledger::new();
        let mut b = Ledger::new();
        for round in 0..5 {
            a.append(round, vec![entry(0, round, 10), entry(1, round, 10)]);
            b.append(round, vec![entry(0, round, 10), entry(1, round, 10)]);
        }
        assert_eq!(a.head_digest(), b.head_digest());
    }

    #[test]
    fn different_entry_order_produces_different_heads() {
        let mut a = Ledger::new();
        let mut b = Ledger::new();
        a.append(0, vec![entry(0, 0, 10), entry(1, 0, 10)]);
        b.append(0, vec![entry(1, 0, 10), entry(0, 0, 10)]);
        assert_ne!(a.head_digest(), b.head_digest());
    }

    #[test]
    fn empty_ledger_verifies() {
        assert!(Ledger::new().verify().is_ok());
        assert_eq!(Ledger::new().head_digest(), Digest::ZERO);
    }
}
