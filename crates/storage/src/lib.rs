//! Storage substrate for the RCC reproduction.
//!
//! Replicas in ResilientDB maintain three kinds of state, all reproduced
//! here:
//!
//! * [`table`] — the YCSB-style record table the workload operates on
//!   (half a million records in the paper's experiments).
//! * [`accounts`] — the bank-account state used by the ordering-attack
//!   illustration of Section IV (Example IV.1 / Fig. 6).
//! * [`ledger`] — the blockchain ledger (journal): a hash-chained, immutable
//!   record of every executed round together with proof-of-acceptance
//!   digests, providing the data-provenance property the paper highlights.
//! * [`checkpoint`] — checkpoint snapshots exchanged by the recovery and
//!   in-the-dark protocols.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accounts;
pub mod checkpoint;
pub mod ledger;
pub mod table;

pub use accounts::AccountStore;
pub use checkpoint::{Checkpoint, CheckpointStore};
pub use ledger::{Block, BlockEntry, Ledger};
pub use table::{Record, RecordTable};
