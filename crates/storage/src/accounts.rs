//! Bank-account state used by the ordering-attack illustration.
//!
//! Example IV.1 of the paper uses conditional `transfer` transactions over
//! accounts (Alice, Bob, Eve) to show that the execution order chosen by a
//! malicious primary changes outcomes. This module stores the balances those
//! transactions operate on.

use std::collections::BTreeMap;

/// A simple account/balance store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccountStore {
    balances: BTreeMap<u32, i64>,
}

impl AccountStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        AccountStore::default()
    }

    /// Creates a store with the given initial balances.
    pub fn with_balances(balances: &[(u32, i64)]) -> Self {
        AccountStore {
            balances: balances.iter().copied().collect(),
        }
    }

    /// The balance of `account` (0 when the account has never been used).
    pub fn balance(&self, account: u32) -> i64 {
        self.balances.get(&account).copied().unwrap_or(0)
    }

    /// Unconditionally credits `amount` to `account`.
    pub fn deposit(&mut self, account: u32, amount: i64) {
        *self.balances.entry(account).or_insert(0) += amount;
    }

    /// Unconditionally debits `amount` from `account`.
    pub fn withdraw(&mut self, account: u32, amount: i64) {
        *self.balances.entry(account).or_insert(0) -= amount;
    }

    /// The conditional transfer of Example IV.1:
    /// `if amount(from) > min_balance then withdraw(from, amount); deposit(to, amount)`.
    /// Returns `true` when the transfer happened.
    pub fn transfer(&mut self, from: u32, to: u32, min_balance: i64, amount: i64) -> bool {
        if self.balance(from) > min_balance {
            self.withdraw(from, amount);
            self.deposit(to, amount);
            true
        } else {
            false
        }
    }

    /// Sets `account`'s recorded balance outright, creating the entry when
    /// missing — the merge half of the parallel executor (deposits and
    /// withdrawals buffered in a group overlay land here). Note that entry
    /// *presence* matters to the fingerprint, so this mirrors the entry
    /// creation `deposit`/`withdraw` would have performed.
    pub fn set_balance(&mut self, account: u32, balance: i64) {
        self.balances.insert(account, balance);
    }

    /// Number of accounts with a recorded balance.
    pub fn len(&self) -> usize {
        self.balances.len()
    }

    /// `true` when no account has a recorded balance.
    pub fn is_empty(&self) -> bool {
        self.balances.is_empty()
    }

    /// Estimated size in bytes of a serialized snapshot of the store (what a
    /// checkpoint transfer would ship): a 4-byte account id and an 8-byte
    /// balance per entry.
    pub fn snapshot_bytes(&self) -> u64 {
        self.balances.len() as u64 * 12
    }

    /// Order-independent fingerprint of all balances, used in state
    /// comparison across replicas.
    pub fn fingerprint(&self) -> u64 {
        self.balances
            .iter()
            .fold(0u64, |acc, (&account, &balance)| {
                let mut x = (account as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((balance as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
                x ^= x >> 29;
                acc ^ x.wrapping_mul(0x1656_67B1_9E37_79F9)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact scenario of Fig. 6 of the paper.
    fn fig6_initial() -> AccountStore {
        // Alice = 0, Bob = 1, Eve = 2.
        AccountStore::with_balances(&[(0, 800), (1, 300), (2, 100)])
    }

    #[test]
    fn fig6_order_t1_then_t2() {
        let mut s = fig6_initial();
        // T1 = transfer(Alice, Bob, 500, 200); T2 = transfer(Bob, Eve, 400, 300).
        assert!(s.transfer(0, 1, 500, 200));
        assert!(s.transfer(1, 2, 400, 300));
        assert_eq!((s.balance(0), s.balance(1), s.balance(2)), (600, 200, 400));
    }

    #[test]
    fn fig6_order_t2_then_t1() {
        let mut s = fig6_initial();
        assert!(
            !s.transfer(1, 2, 400, 300),
            "Bob has only 300 > 400 is false: no transfer"
        );
        assert!(s.transfer(0, 1, 500, 200));
        assert_eq!((s.balance(0), s.balance(1), s.balance(2)), (600, 500, 100));
    }

    #[test]
    fn conditional_transfer_requires_strictly_greater_balance() {
        let mut s = AccountStore::with_balances(&[(0, 100)]);
        assert!(!s.transfer(0, 1, 100, 10), "condition is strict >");
        assert!(s.transfer(0, 1, 99, 10));
        assert_eq!(s.balance(0), 90);
        assert_eq!(s.balance(1), 10);
    }

    #[test]
    fn fingerprint_reflects_balances_not_access_order() {
        let mut a = AccountStore::new();
        let mut b = AccountStore::new();
        a.deposit(1, 10);
        a.deposit(2, 20);
        b.deposit(2, 20);
        b.deposit(1, 10);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.deposit(1, 1);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
