//! The YCSB-style record table.
//!
//! The paper's workload queries "a YCSB table with half a million active
//! records" where 90 % of transactions write. The table here is an in-memory
//! map from numeric keys to byte payloads with an incrementally maintained
//! state fingerprint so that replicas can cheaply compare their state during
//! checkpoints and tests can assert replica convergence.

use rcc_common::Digest;
use std::collections::BTreeMap;

/// One record of the table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Record {
    /// The record payload (YCSB field bytes).
    pub payload: Vec<u8>,
    /// Number of times the record has been written.
    pub version: u64,
}

/// An in-memory record table with an incrementally maintained state
/// fingerprint.
#[derive(Clone, Debug, Default)]
pub struct RecordTable {
    records: BTreeMap<u64, Record>,
    writes: u64,
    reads: u64,
    fingerprint: u64,
}

fn mix(key: u64, version: u64, payload: &[u8]) -> u64 {
    // A fast 64-bit mixing function (splitmix64-style) over the record
    // identity; incremental XOR-composition over records keeps the
    // fingerprint order-independent and updatable in O(1) per write.
    let mut x = key
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(version.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(
            payload
                .iter()
                .fold(0u64, |acc, &b| acc.wrapping_mul(131).wrapping_add(b as u64)),
        );
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RecordTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RecordTable::default()
    }

    /// Creates a table pre-populated with `records` keys (`0..records`), each
    /// holding a payload of `payload_size` bytes derived from the key. This
    /// mirrors the experiment setup: "prior to the experiments, each replica
    /// is initialized with an identical copy of the YCSB table".
    pub fn initialize(records: u64, payload_size: usize) -> Self {
        let mut table = RecordTable::new();
        for key in 0..records {
            let byte = (key % 251) as u8;
            table.write(key, vec![byte; payload_size]);
        }
        // Initialization is not part of the measured workload.
        table.writes = 0;
        table.reads = 0;
        table
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Reads the record stored under `key`.
    pub fn read(&mut self, key: u64) -> Option<&Record> {
        self.reads += 1;
        self.records.get(&key)
    }

    /// Reads without updating access statistics (used by scans and state
    /// inspection).
    pub fn peek(&self, key: u64) -> Option<&Record> {
        self.records.get(&key)
    }

    /// Writes `payload` under `key`, replacing any previous record.
    pub fn write(&mut self, key: u64, payload: Vec<u8>) {
        self.writes += 1;
        let version = self.records.get(&key).map(|r| r.version + 1).unwrap_or(0);
        if let Some(old) = self.records.get(&key) {
            self.fingerprint ^= mix(key, old.version, &old.payload);
        }
        self.fingerprint ^= mix(key, version, &payload);
        self.records.insert(key, Record { payload, version });
    }

    /// Appends `delta` to the record under `key` (creating it when missing)
    /// and returns the new length — the read-modify-write operation of YCSB.
    pub fn read_modify_write(&mut self, key: u64, delta: &[u8]) -> usize {
        self.reads += 1;
        let mut payload = self
            .records
            .get(&key)
            .map(|r| r.payload.clone())
            .unwrap_or_default();
        payload.extend_from_slice(delta);
        let len = payload.len();
        self.write(key, payload);
        len
    }

    /// Scans `count` consecutive keys starting at `start`, returning the
    /// number of existing records touched.
    pub fn scan(&mut self, start: u64, count: u32) -> usize {
        self.reads += count as u64;
        self.count_range(start, count)
    }

    /// Number of existing records in `[start, start + count)` without
    /// touching the access statistics — the read-only half of [`scan`],
    /// used by the parallel executor's workers against the shared base
    /// table.
    ///
    /// [`scan`]: RecordTable::scan
    pub fn count_range(&self, start: u64, count: u32) -> usize {
        self.records
            .range(start..start.saturating_add(count as u64))
            .count()
    }

    /// Installs a record at an explicit version, maintaining the fingerprint
    /// but **not** the access counters — the merge half of the parallel
    /// executor. Because the fingerprint composes by XOR, installing only a
    /// key's *final* record is equivalent to replaying every intermediate
    /// write (the intermediate contributions cancel pairwise).
    pub fn install(&mut self, key: u64, payload: Vec<u8>, version: u64) {
        if let Some(old) = self.records.get(&key) {
            self.fingerprint ^= mix(key, old.version, &old.payload);
        }
        self.fingerprint ^= mix(key, version, &payload);
        self.records.insert(key, Record { payload, version });
    }

    /// Adds externally counted read/write operations to the access
    /// statistics — the counters a parallel group accumulated while its
    /// writes were still buffered in an overlay.
    pub fn note_accesses(&mut self, reads: u64, writes: u64) {
        self.reads += reads;
        self.writes += writes;
    }

    /// Number of write operations applied (excluding initialization).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Number of read operations served (excluding initialization).
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// The incrementally maintained state fingerprint. Two replicas that
    /// applied the same writes in any order-preserving schedule have the
    /// same fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Estimated size in bytes of a serialized snapshot of the table (what a
    /// checkpoint transfer would ship to a rejoining replica): per record,
    /// an 8-byte key, an 8-byte version, and the payload.
    pub fn snapshot_bytes(&self) -> u64 {
        self.records
            .values()
            .map(|r| 16 + r.payload.len() as u64)
            .sum()
    }

    /// A digest form of the fingerprint, convenient for embedding in
    /// checkpoint messages.
    pub fn state_digest(&self) -> Digest {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&self.fingerprint.to_be_bytes());
        bytes[8..16].copy_from_slice(&(self.records.len() as u64).to_be_bytes());
        Digest::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialize_creates_identical_tables() {
        let a = RecordTable::initialize(1000, 64);
        let b = RecordTable::initialize(1000, 64);
        assert_eq!(a.len(), 1000);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.write_count(), 0, "initialization is not counted");
    }

    #[test]
    fn writes_change_the_fingerprint_reads_do_not() {
        let mut t = RecordTable::initialize(100, 8);
        let before = t.fingerprint();
        t.read(5);
        t.scan(0, 10);
        assert_eq!(t.fingerprint(), before);
        t.write(5, vec![1, 2, 3]);
        assert_ne!(t.fingerprint(), before);
    }

    #[test]
    fn same_writes_same_fingerprint() {
        let mut a = RecordTable::initialize(100, 8);
        let mut b = RecordTable::initialize(100, 8);
        a.write(1, vec![9]);
        a.write(2, vec![8]);
        b.write(1, vec![9]);
        b.write(2, vec![8]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn divergent_writes_diverge_fingerprint() {
        let mut a = RecordTable::initialize(100, 8);
        let mut b = RecordTable::initialize(100, 8);
        a.write(1, vec![9]);
        b.write(1, vec![7]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn read_modify_write_appends() {
        let mut t = RecordTable::new();
        t.write(1, vec![1, 2]);
        let len = t.read_modify_write(1, &[3, 4, 5]);
        assert_eq!(len, 5);
        assert_eq!(t.peek(1).unwrap().payload, vec![1, 2, 3, 4, 5]);
        assert_eq!(t.peek(1).unwrap().version, 1);
    }

    #[test]
    fn scan_counts_existing_records() {
        let mut t = RecordTable::initialize(50, 4);
        assert_eq!(t.scan(40, 20), 10);
        assert_eq!(t.scan(0, 5), 5);
    }

    #[test]
    fn versions_increment_per_key() {
        let mut t = RecordTable::new();
        t.write(7, vec![0]);
        t.write(7, vec![1]);
        t.write(7, vec![2]);
        assert_eq!(t.peek(7).unwrap().version, 2);
    }
}
