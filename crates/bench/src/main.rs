//! `rcc-bench` — the campaign runner CLI.
//!
//! Runs a named experiment campaign over the discrete-event simulator and
//! writes `<out>/<campaign>.csv` (machine-readable, archived by CI) and
//! `<out>/<campaign>.md` (human-readable). The Markdown table is also
//! printed to stdout; progress goes to stderr so stdout stays deterministic.
//!
//! ```text
//! rcc-bench [--preset smoke|fig7|fig7-auth|fig8|faults|recovery|long-horizon|chaos]
//!           [--seed N] [--out DIR] [--floor TPS] [--max-retained N]
//!           [--pipeline-gate] [--quiet]
//! ```
//!
//! `--floor TPS` turns the run into a regression gate: the process exits
//! non-zero when any row's tail-window throughput (`tail_tps`, the final
//! third of the measurement window — the post-recovery steady state in
//! fault runs) falls below the floor. CI runs the `recovery` preset this
//! way so a regression in client reassignment (Section III-E) fails the
//! build instead of silently shipping a post-crash throughput collapse.
//! Each row's effective gate is the floor scaled by its scenario's
//! `liveness_floor_factor` — 1.0 for the classic scenarios, fractional for
//! the `chaos` preset's scenario classes, where the assertion is that
//! liveness *degrades gracefully* under an adaptive adversary rather than
//! being unaffected.
//!
//! `--max-retained N` is the memory-side gate: exit non-zero when any row's
//! peak retained per-slot log (`peak_retained`) exceeds `N` entries. CI runs
//! the `long-horizon` preset this way so a regression in §III-D
//! checkpointing/garbage collection — logs quietly growing with the horizon
//! again — fails the build.
//!
//! `--pipeline-gate` is the staged-pipeline gate, meant for the `fig7-auth`
//! preset (which sweeps the verify/execute worker-pool width): exit non-zero
//! when mac-mode throughput at 8 workers does not beat the 1-worker row. A
//! regression here means batch verification stopped parallelizing — the
//! worker pool fell off the hot path.
//!
//! See `docs/EVALUATION.md` for what each campaign measures and how the
//! output columns map back to the paper's figures.

use rcc_bench::{campaign_by_name, CAMPAIGN_NAMES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    preset: String,
    seed: u64,
    out: PathBuf,
    floor: Option<f64>,
    max_retained: Option<u64>,
    pipeline_gate: bool,
    dump_events: bool,
    quiet: bool,
}

fn usage() -> String {
    format!(
        "usage: rcc-bench [--preset NAME] [--seed N] [--out DIR] [--floor TPS] \
         [--max-retained N] [--pipeline-gate] [--dump-events] [--quiet]\n\
         presets: {}\n\
         defaults: --preset smoke --seed {} --out bench-results\n\
         --floor TPS: exit non-zero when any row's tail-window throughput falls below TPS\n\
         --max-retained N: exit non-zero when any row's peak retained log exceeds N entries\n\
         --pipeline-gate: exit non-zero when mac-mode throughput at 8 workers does not \
         beat the 1-worker row (use with --preset fig7-auth)\n\
         --dump-events: print every row's flight-recorder trace to stderr \
         (a floor violation dumps the offending row's trace regardless)",
        CAMPAIGN_NAMES.join(", "),
        rcc_common::config::DEFAULT_SEED,
    )
}

/// A parsed invocation: either "show the usage text" or a run request.
enum Cli {
    Help,
    Run(Args),
}

fn parse_args() -> Result<Cli, String> {
    let mut args = Args {
        preset: "smoke".into(),
        seed: rcc_common::config::DEFAULT_SEED,
        out: PathBuf::from("bench-results"),
        floor: None,
        max_retained: None,
        pipeline_gate: false,
        dump_events: false,
        quiet: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--preset" => {
                args.preset = iter.next().ok_or("--preset needs a value")?;
            }
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("invalid seed: {v}"))?;
            }
            "--out" => {
                args.out = PathBuf::from(iter.next().ok_or("--out needs a value")?);
            }
            "--floor" => {
                let v = iter.next().ok_or("--floor needs a value")?;
                args.floor = Some(v.parse().map_err(|_| format!("invalid floor: {v}"))?);
            }
            "--max-retained" => {
                let v = iter.next().ok_or("--max-retained needs a value")?;
                args.max_retained = Some(
                    v.parse()
                        .map_err(|_| format!("invalid max-retained: {v}"))?,
                );
            }
            "--pipeline-gate" => args.pipeline_gate = true,
            "--dump-events" => args.dump_events = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Ok(Cli::Help),
            other => return Err(format!("unknown argument: {other}\n{}", usage())),
        }
    }
    Ok(Cli::Run(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Cli::Run(args)) => args,
        Ok(Cli::Help) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let Some(campaign) = campaign_by_name(&args.preset, args.seed) else {
        eprintln!(
            "unknown preset `{}` (expected one of: {})",
            args.preset,
            CAMPAIGN_NAMES.join(", ")
        );
        return ExitCode::FAILURE;
    };
    let total = campaign.specs.len();
    let quiet = args.quiet;
    let results = campaign.run_with(|i, spec| {
        if !quiet {
            eprintln!(
                "[{}/{total}] {} {} n={} m={} batch={} fault={} …",
                i + 1,
                spec.protocol.name(),
                spec.network.name(),
                spec.n,
                spec.m,
                spec.batch_size,
                spec.fault.name(),
            );
        }
    });
    if results.rows.iter().any(|r| r.committed_transactions == 0) {
        eprintln!("error: a run committed zero transactions — the simulator is broken");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("error: cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    let csv_path = args.out.join(format!("{}.csv", results.name));
    let md_path = args.out.join(format!("{}.md", results.name));
    if let Err(e) = std::fs::write(&csv_path, results.to_csv()) {
        eprintln!("error: cannot write {}: {e}", csv_path.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&md_path, results.to_markdown()) {
        eprintln!("error: cannot write {}: {e}", md_path.display());
        return ExitCode::FAILURE;
    }
    let telemetry_path = args.out.join(format!("{}-telemetry.jsonl", results.name));
    let flight_path = args.out.join(format!("{}-flight.jsonl", results.name));
    if let Err(e) = std::fs::write(&telemetry_path, results.to_telemetry_jsonl()) {
        eprintln!("error: cannot write {}: {e}", telemetry_path.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&flight_path, results.to_flight_jsonl()) {
        eprintln!("error: cannot write {}: {e}", flight_path.display());
        return ExitCode::FAILURE;
    }
    print!("{}", results.to_markdown());
    if args.dump_events {
        for row in &results.rows {
            eprintln!(
                "--- flight: {} {} fault={} seed={} ---",
                row.spec.protocol.name(),
                row.spec.network.name(),
                row.spec.fault.name(),
                row.spec.seed,
            );
            eprint!("{}", rcc_telemetry::dump_text(&row.flight));
        }
    }
    // The floor gate runs *after* the results are on disk and stdout, so a
    // failing run still leaves its CSV/Markdown evidence for debugging.
    if let Some(floor) = args.floor {
        let mut failed = false;
        for row in &results.rows {
            // Chaos scenario classes accept a degraded-but-alive tail: the
            // gate is the floor scaled by the scenario's liveness factor
            // (1.0 for classic scenarios, fractional for chaos — see
            // `FaultScenario::liveness_floor_factor`).
            let gate = floor * row.spec.fault.liveness_floor_factor();
            if row.tail_tps < gate {
                failed = true;
                eprintln!(
                    "error: tail-window throughput below the floor: {} {} fault={} \
                     tail_tps={:.0} < {gate:.0} (floor {floor:.0} × factor {:.2}; \
                     post-recovery steady state regressed?)",
                    row.spec.protocol.name(),
                    row.spec.network.name(),
                    row.spec.fault.name(),
                    row.tail_tps,
                    row.spec.fault.liveness_floor_factor(),
                );
                // Dump the offending row's flight trace — with the violation
                // stamped onto its tail — so the failure mode (missed
                // detection? view-change loop? hand-off storm?) is visible in
                // the CI log without a re-run.
                let violation = rcc_telemetry::FlightEvent {
                    at_nanos: row.flight.last().map_or(0, |event| event.at_nanos),
                    source: 0,
                    kind: rcc_telemetry::FlightEventKind::FloorViolation {
                        observed: row.tail_tps as u64,
                        floor: gate as u64,
                    },
                };
                if args.dump_events {
                    eprint!("{}", rcc_telemetry::dump_text(&[violation]));
                } else {
                    let mut trace = row.flight.clone();
                    trace.push(violation);
                    eprint!("{}", rcc_telemetry::dump_text(&trace));
                }
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
    }
    if let Some(cap) = args.max_retained {
        let mut failed = false;
        for row in &results.rows {
            if row.peak_retained_log > cap {
                failed = true;
                eprintln!(
                    "error: peak retained log above the cap: {} {} fault={} \
                     peak_retained={} > {cap} (checkpointing/GC regressed?)",
                    row.spec.protocol.name(),
                    row.spec.network.name(),
                    row.spec.fault.name(),
                    row.peak_retained_log,
                );
                // Same rationale as the floor gate: the flight trace shows
                // whether checkpoints stabilized at all (and how far apart)
                // without a re-run.
                if !args.dump_events {
                    eprint!("{}", rcc_telemetry::dump_text(&row.flight));
                }
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
    }
    if args.pipeline_gate {
        let mac_tps = |workers: u32| {
            results
                .rows
                .iter()
                .find(|r| r.spec.crypto == rcc_common::CryptoMode::Mac && r.spec.workers == workers)
                .map(|r| r.throughput_tps)
        };
        match (mac_tps(1), mac_tps(8)) {
            (Some(narrow), Some(wide)) => {
                if wide <= narrow {
                    eprintln!(
                        "error: pipeline gate failed: mac-mode throughput at 8 workers \
                         ({wide:.0} tps) does not beat the 1-worker row ({narrow:.0} tps) — \
                         batch verification stopped parallelizing"
                    );
                    return ExitCode::FAILURE;
                }
                if !quiet {
                    eprintln!(
                        "pipeline gate: mac 8-worker {wide:.0} tps vs 1-worker {narrow:.0} tps \
                         ({:.2}×)",
                        wide / narrow.max(1.0)
                    );
                }
            }
            _ => {
                eprintln!(
                    "error: --pipeline-gate needs mac-mode rows at 1 and 8 workers \
                     (run it with --preset fig7-auth)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if !quiet {
        eprintln!("wrote {} and {}", csv_path.display(), md_path.display());
    }
    ExitCode::SUCCESS
}
