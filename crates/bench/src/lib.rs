//! Reproducible experiment campaigns over the `rcc-sim` discrete-event
//! simulator, mirroring the paper's evaluation (Section V).
//!
//! A campaign is an experiment matrix — protocol × deployment size `n` ×
//! concurrent instances `m` × batch size × authentication mode × network ×
//! fault scenario — run with warm-up/measure/cool-down phasing: metrics are
//! evaluated only over the measurement window, so pipeline fill and drain do
//! not distort throughput, and latency samples are restricted to batches
//! submitted inside the window.
//!
//! Results are emitted as CSV (one row per experiment, machine-readable, the
//! format CI archives) and as a Markdown table (human-readable). Both are
//! deterministic: the same seed and matrix produce byte-identical output,
//! which is what makes regression comparison across PRs meaningful.
//! `docs/EVALUATION.md` documents every knob and how the output columns map
//! onto the axes of Fig. 7 and Fig. 8 of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rcc_common::{CryptoMode, Duration, ReplicaId, SystemConfig, Time};
use rcc_sim::{
    simulate_pbft, simulate_rcc_over_pbft, AdversaryAttack, AdversarySpec, CpuModel, FaultKind,
    FaultScript, NetworkModel, SimConfig, SimReport,
};
use rcc_telemetry::{FlightEvent, Snapshot};
use std::fmt::Write as _;

/// Which consensus system a row measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolKind {
    /// RCC running `m` concurrent PBFT instances (the paper's "RCC").
    RccPbft,
    /// Standalone PBFT with out-of-order processing (the paper's strongest
    /// primary-backup baseline).
    Pbft,
}

impl ProtocolKind {
    /// Stable name used in CSV/Markdown output.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::RccPbft => "rcc-pbft",
            ProtocolKind::Pbft => "pbft",
        }
    }
}

/// Which link model a row uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetworkKind {
    /// Single-cluster LAN (Fig. 7-left / Fig. 8 LAN rows).
    Lan,
    /// Four-region WAN (Fig. 8 WAN rows).
    Wan,
}

impl NetworkKind {
    /// Stable name used in CSV/Markdown output.
    pub fn name(self) -> &'static str {
        match self {
            NetworkKind::Lan => "lan",
            NetworkKind::Wan => "wan",
        }
    }

    /// The simulator link model.
    pub fn model(self) -> NetworkModel {
        match self {
            NetworkKind::Lan => NetworkModel::lan(),
            NetworkKind::Wan => NetworkModel::wan(),
        }
    }
}

/// Scripted fault scenarios, injected shortly after the warm-up phase so the
/// measurement window observes the system under the fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultScenario {
    /// Failure-free run.
    None,
    /// The highest-numbered replica crashes — a backup of every instance
    /// when `m < n`, the coordinator of instance `n − 1` when `m = n` (in
    /// which case RCC must replace it with an instance-local view change).
    CrashReplica,
    /// Replica 1 — coordinator of instance 1 when `m > 1` — turns into a
    /// Byzantine silent primary and withholds its proposals.
    SilenceCoordinator,
    /// Replica 1 throttles its own CPU by 8× (the Section-IV attack).
    ThrottleCoordinator,
    /// The highest-numbered replica crashes at the start of measurement and
    /// *recovers* a third of the way into the window. By then the survivors
    /// have checkpointed and pruned far past its frontier, so the rejoining
    /// replica must catch up through the §III-D checkpoint-transfer path —
    /// the scenario the `long-horizon` preset measures.
    CrashRecoverReplica,
    /// An *adaptive* adversary that repeatedly crash-faults whichever
    /// replica currently coordinates the most instances, re-acquiring its
    /// target from observed [`rcc_common::InstanceStatus`] after every view
    /// change. Budgeted at `f` concurrent corruptions (one at n = 4), three
    /// strikes total — the strongest crash schedule the paper's fault model
    /// admits.
    AdaptiveKill,
    /// The same adaptive targeting, but the victim turns Byzantine-silent
    /// (withholds its proposals) instead of crashing. The previous victim is
    /// released on each re-target so the corruption budget stays at `f`.
    AdaptiveSilence,
    /// Instance 1's coordinator crashes while two of the three survivors
    /// run 4×-slow clocks: their σ-lag detectors fire late, so the `f + 1`
    /// suspicion quorum — and with it the view change — is reached at the
    /// skewed cadence, stretching the outage. This is the failure mode
    /// clock skew actually causes in a partially synchronous system (a
    /// skewed clock in a *healthy* cluster is harmless: progress keeps
    /// re-arming the detectors before they fire). The skew is repaired two
    /// thirds into the window.
    ClockSkew,
    /// A one-way partition: replica 1 hears everyone, but nothing replica 1
    /// sends is delivered — the asymmetric failure that makes a coordinator
    /// look alive to itself while the rest of the cluster deposes it. Healed
    /// two thirds into the window.
    AsymmetricPartition,
    /// Slowloris: every link *into* replica 1 serializes 400× slower
    /// (10 Gbit/s down to ~25 Mbit/s), so frames bound for it occupy each
    /// sender's shared egress NIC long enough to back-pressure *all* of
    /// that sender's traffic. Restored two thirds into the window.
    Slowloris,
    /// Wire-level corruption: 1% of replica-to-replica messages are
    /// mangled in flight (corrupted frames are rejected at the decode
    /// boundary, others are duplicated, delayed, or replayed stale). Stops
    /// two thirds into the window.
    WireMangle,
}

impl FaultScenario {
    /// Stable name used in CSV/Markdown output.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenario::None => "none",
            FaultScenario::CrashReplica => "crash-replica",
            FaultScenario::SilenceCoordinator => "silence-coordinator",
            FaultScenario::ThrottleCoordinator => "throttle-coordinator",
            FaultScenario::CrashRecoverReplica => "crash-recover",
            FaultScenario::AdaptiveKill => "adaptive-kill",
            FaultScenario::AdaptiveSilence => "adaptive-silence",
            FaultScenario::ClockSkew => "clock-skew",
            FaultScenario::AsymmetricPartition => "asymmetric-partition",
            FaultScenario::Slowloris => "slowloris",
            FaultScenario::WireMangle => "wire-mangle",
        }
    }

    /// The adaptive-adversary schedule of this scenario, if any. Adaptive
    /// scenarios have no static [`FaultScript`]: the victim is chosen at
    /// run time from observed coordinator assignments, so the schedule is a
    /// policy ([`AdversarySpec`]) rather than a timeline.
    pub fn adversary(self, measure_start: Time) -> Option<AdversarySpec> {
        // Same injection offset as `script`; strikes every 400 ms leave the
        // cluster time to view-change between blows, and a 3-strike budget
        // ends the campaign before the tail window so the floor measures
        // the *recovered* steady state.
        let start = measure_start + Duration::from_millis(50);
        let interval = Duration::from_millis(400);
        match self {
            FaultScenario::AdaptiveKill => Some(AdversarySpec::new(
                start,
                interval,
                AdversaryAttack::Kill {
                    down_for: Duration::from_millis(350),
                },
                3,
            )),
            FaultScenario::AdaptiveSilence => Some(AdversarySpec::new(
                start,
                interval,
                AdversaryAttack::Silence,
                3,
            )),
            _ => None,
        }
    }

    /// Scenario-specific scaling of the `--floor` liveness gate. Failure-free
    /// and single-fault scenarios keep the full floor (factor 1.0); chaos
    /// scenarios accept a degraded-but-alive tail, so the gate asserts
    /// "liveness degrades gracefully" rather than "nothing happened".
    pub fn liveness_floor_factor(self) -> f64 {
        match self {
            FaultScenario::None
            | FaultScenario::CrashReplica
            | FaultScenario::SilenceCoordinator
            | FaultScenario::ThrottleCoordinator
            | FaultScenario::CrashRecoverReplica => 1.0,
            // Three coordinator kills leave the last view change barely
            // ahead of the tail window; the floor only asserts recovery is
            // under way.
            FaultScenario::AdaptiveKill => 0.25,
            // The final silenced victim stays Byzantine-silent through the
            // tail, so the deposition churn it causes never fully settles —
            // the heaviest sustained degradation in the preset. The floor
            // asserts the cluster keeps committing, not that it recovers.
            FaultScenario::AdaptiveSilence => 0.1,
            // Spurious view changes from the fast clock churn coordinators
            // until the skew is repaired at the 2/3 mark.
            FaultScenario::ClockSkew => 0.25,
            // One replica's output is blackholed for 2/3 of the window.
            FaultScenario::AsymmetricPartition => 0.25,
            // Back-pressure on every peer's egress throttles the whole
            // cluster while the slow link persists; the tail starts just
            // after the repair, mid-drain of the backlog.
            FaultScenario::Slowloris => 0.25,
            // 1% message mangling costs retransmissions and the odd view
            // change but must not halt the pipeline.
            FaultScenario::WireMangle => 0.25,
        }
    }

    /// The concrete fault script for a deployment of `n` replicas whose
    /// measurement window starts at `measure_start` and lasts `measure`.
    pub fn script(self, n: usize, measure_start: Time, measure: Duration) -> FaultScript {
        // Inject just after measurement begins so the fault's effect is
        // inside the measured window.
        let at = measure_start + Duration::from_millis(50);
        match self {
            FaultScenario::None => FaultScript::none(),
            FaultScenario::CrashReplica => FaultScript::crash_at(at, ReplicaId(n as u32 - 1)),
            FaultScenario::SilenceCoordinator => FaultScript::silence_at(at, ReplicaId(1)),
            FaultScenario::ThrottleCoordinator => FaultScript::none().with(
                at,
                FaultKind::Throttle {
                    replica: ReplicaId(1),
                    factor: 8.0,
                },
            ),
            FaultScenario::CrashRecoverReplica => {
                let replica = ReplicaId(n as u32 - 1);
                FaultScript::crash_at(at, replica).with(
                    measure_start + Duration::from_nanos(measure.as_nanos() / 3),
                    FaultKind::Recover { replica },
                )
            }
            // The adaptive scenarios carry no static script — see
            // [`FaultScenario::adversary`].
            FaultScenario::AdaptiveKill | FaultScenario::AdaptiveSilence => FaultScript::none(),
            FaultScenario::ClockSkew => {
                let repair = Self::repair_at(measure_start, measure);
                let mut script = FaultScript::crash_at(at, ReplicaId(1));
                for replica in [ReplicaId(2), ReplicaId(3)] {
                    script = script
                        .with(
                            at,
                            FaultKind::ClockSkew {
                                replica,
                                factor: 4.0,
                            },
                        )
                        .with(
                            repair,
                            FaultKind::ClockSkew {
                                replica,
                                factor: 1.0,
                            },
                        );
                }
                script
            }
            FaultScenario::AsymmetricPartition => {
                let others: Vec<ReplicaId> =
                    (0..n as u32).filter(|&r| r != 1).map(ReplicaId).collect();
                FaultScript::none()
                    .with(
                        at,
                        FaultKind::PartitionOneWay {
                            from: vec![ReplicaId(1)],
                            to: others,
                        },
                    )
                    .with(Self::repair_at(measure_start, measure), FaultKind::Heal)
            }
            FaultScenario::Slowloris => FaultScript::none()
                .with(
                    at,
                    FaultKind::SlowLink {
                        replica: ReplicaId(1),
                        factor: 400.0,
                    },
                )
                .with(
                    Self::repair_at(measure_start, measure),
                    FaultKind::SlowLink {
                        replica: ReplicaId(1),
                        factor: 1.0,
                    },
                ),
            FaultScenario::WireMangle => FaultScript::none()
                .with(at, FaultKind::MangleWire { rate_ppm: 10_000 })
                .with(
                    Self::repair_at(measure_start, measure),
                    FaultKind::MangleWire { rate_ppm: 0 },
                ),
        }
    }

    /// Two thirds into the measurement window: where the repairable chaos
    /// scenarios undo their fault, so the tail third measures recovery.
    fn repair_at(measure_start: Time, measure: Duration) -> Time {
        measure_start + Duration::from_nanos(measure.as_nanos() * 2 / 3)
    }
}

/// Warm-up / measurement / cool-down phasing of every run in a campaign.
#[derive(Clone, Copy, Debug)]
pub struct Phases {
    /// Virtual time before measurement starts (pipeline fill).
    pub warmup: Duration,
    /// Virtual length of the measurement window.
    pub measure: Duration,
    /// Virtual time after measurement (lets in-flight batches drain).
    pub cooldown: Duration,
}

impl Phases {
    /// The phasing used by the full campaigns: 0.2 s warm-up, 0.7 s
    /// measurement, 0.1 s cool-down of virtual time.
    pub fn standard() -> Self {
        Phases {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(700),
            cooldown: Duration::from_millis(100),
        }
    }

    /// Longer phasing for small deployments (CI smoke): the runs are cheap,
    /// so a longer window tightens the estimates.
    pub fn smoke() -> Self {
        Phases {
            warmup: Duration::from_millis(500),
            measure: Duration::from_secs(3),
            cooldown: Duration::from_millis(500),
        }
    }

    /// The phasing used by the `recovery` campaign: a long measurement
    /// window, so a fault injected at its start has fully played out —
    /// detection, view change, σ-spaced client reassignment — well before
    /// the trailing third over which the recovered steady state is measured.
    pub fn recovery() -> Self {
        Phases {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(3000),
            cooldown: Duration::from_millis(100),
        }
    }

    /// Total virtual horizon of one run.
    pub fn total(&self) -> Duration {
        self.warmup + self.measure + self.cooldown
    }

    /// Start of the measurement window.
    pub fn measure_start(&self) -> Time {
        Time::ZERO + self.warmup
    }

    /// End of the measurement window.
    pub fn measure_end(&self) -> Time {
        Time::ZERO + self.warmup + self.measure
    }

    /// Start of the *tail* window: the final third of the measurement
    /// window. In fault runs this is the post-recovery steady state (the
    /// fault is injected at the start of measurement); in failure-free runs
    /// it is simply a late slice of the same steady state.
    pub fn tail_start(&self) -> Time {
        Time::from_nanos(
            self.measure_end()
                .as_nanos()
                .saturating_sub(self.measure.as_nanos() / 3),
        )
    }
}

/// One cell of an experiment matrix.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// The measured system.
    pub protocol: ProtocolKind,
    /// The link model.
    pub network: NetworkKind,
    /// The fault scenario.
    pub fault: FaultScenario,
    /// Number of replicas `n`.
    pub n: usize,
    /// Concurrent instances `m` (forced to 1 for [`ProtocolKind::Pbft`]).
    pub m: usize,
    /// Transactions per batch.
    pub batch_size: usize,
    /// Replica-to-replica authentication mode.
    pub crypto: CryptoMode,
    /// Deterministic seed of the run.
    pub seed: u64,
    /// Width of the verify/execute worker pool on each replica (the staged
    /// pipeline's parallel lane). 16 — all cores — matches the paper's
    /// replicas and is the default everywhere except the worker sweeps.
    pub workers: u32,
}

impl ExperimentSpec {
    fn crypto_name(&self) -> &'static str {
        match self.crypto {
            CryptoMode::None => "none",
            CryptoMode::Mac => "mac",
            CryptoMode::PublicKey => "pk",
        }
    }

    /// The [`SystemConfig`] this spec describes.
    pub fn system(&self) -> SystemConfig {
        SystemConfig::new(self.n)
            .with_instances(self.m)
            .with_batch_size(self.batch_size)
            .with_crypto(self.crypto)
            .with_seed(self.seed)
    }
}

/// Measurements of one experiment.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The experiment that was run.
    pub spec: ExperimentSpec,
    /// Quorum-committed throughput (txn/s) over the measurement window.
    pub throughput_tps: f64,
    /// Quorum-committed throughput (txn/s) over the *tail* window — the
    /// final third of the measurement window ([`Phases::tail_start`]). In
    /// fault runs this isolates the post-recovery steady state from the
    /// outage; the `recovery` preset's sanity floor checks this column.
    pub tail_tps: f64,
    /// Mean client latency in milliseconds.
    pub latency_mean_ms: f64,
    /// Median client latency in milliseconds.
    pub latency_p50_ms: f64,
    /// 99th-percentile client latency in milliseconds.
    pub latency_p99_ms: f64,
    /// Transactions that reached the `f + 1` commit quorum over the whole
    /// run.
    pub committed_transactions: u64,
    /// Batches that reached the `f + 1` commit quorum over the whole run.
    pub committed_batches: u64,
    /// Messages delivered between replicas.
    pub messages_delivered: u64,
    /// Bytes delivered between replicas.
    pub bytes_delivered: u64,
    /// Simulation events processed.
    pub events_processed: u64,
    /// `SuspectPrimary` actions observed.
    pub suspicions: u64,
    /// `ViewChanged` actions observed.
    pub view_changes: u64,
    /// Client hand-offs performed by the Section III-E assignment policy.
    pub client_handoffs: u64,
    /// Peak per-slot log entries retained by any single replica at any
    /// point of the run — the memory-pressure column. Bounded by
    /// O(`checkpoint_interval` × m) with §III-D checkpointing; the
    /// `long-horizon` preset gates it in CI via `rcc-bench --max-retained`.
    pub peak_retained_log: u64,
    /// Strikes landed by the adaptive adversary (0 in non-adaptive runs).
    pub adversary_strikes: u64,
    /// The run's event-trace fingerprint (equal ⇒ identical run).
    pub trace_fingerprint: u64,
    /// The run's end-of-run telemetry registry snapshot (the `sim.*` metric
    /// catalog in `docs/OBSERVABILITY.md`); the counter columns above are
    /// sourced from it.
    pub telemetry: Snapshot,
    /// The run's flight-recorder trace (view changes, σ-lag detections,
    /// checkpoint stabilizations, client hand-offs), oldest first.
    pub flight: Vec<FlightEvent>,
}

fn to_ms(d: rcc_common::Duration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// Runs one experiment with the given phasing.
pub fn run_spec(spec: &ExperimentSpec, phases: &Phases) -> RunResult {
    let mut spec = spec.clone();
    if spec.protocol == ProtocolKind::Pbft {
        // Standalone PBFT has exactly one primary; `m` is not meaningful.
        spec.m = 1;
    }
    let mut config = SimConfig::new(spec.system(), spec.network.model(), phases.total())
        .with_cpu(CpuModel::with_workers(spec.workers))
        .with_measure_window(phases.measure_start(), phases.measure_end())
        .with_faults(
            spec.fault
                .script(spec.n, phases.measure_start(), phases.measure),
        );
    if let Some(adversary) = spec.fault.adversary(phases.measure_start()) {
        config = config.with_adversary(adversary);
    }
    let report: SimReport = match spec.protocol {
        ProtocolKind::RccPbft => simulate_rcc_over_pbft(config),
        ProtocolKind::Pbft => simulate_pbft(config),
    };
    // The counter columns are sourced from the run's telemetry registry —
    // the same numbers every other consumer of the snapshot sees — so a
    // drift between the report's native counters and the registry would
    // show up in the CSV immediately.
    let counter = |name: &str| report.telemetry.counter(name).unwrap_or(0);
    RunResult {
        throughput_tps: report.throughput_over(phases.measure_start(), phases.measure_end()),
        tail_tps: report.throughput_over(phases.tail_start(), phases.measure_end()),
        latency_mean_ms: to_ms(report.latency.mean()),
        latency_p50_ms: to_ms(report.latency.percentile(0.5)),
        latency_p99_ms: to_ms(report.latency.percentile(0.99)),
        committed_transactions: counter("sim.committed_txns"),
        committed_batches: counter("sim.committed_batches"),
        messages_delivered: counter("sim.messages"),
        bytes_delivered: counter("sim.bytes"),
        events_processed: report.events_processed,
        suspicions: counter("sim.suspicions"),
        view_changes: counter("sim.view_changes"),
        client_handoffs: counter("sim.client_handoffs"),
        peak_retained_log: report.telemetry.gauge("sim.peak_retained_log").unwrap_or(0),
        adversary_strikes: counter("sim.adversary_strikes"),
        trace_fingerprint: report.trace_fingerprint,
        telemetry: report.telemetry,
        flight: report.flight,
        spec,
    }
}

/// A named experiment matrix.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// Campaign name (used for output file names).
    pub name: String,
    /// The experiments, in execution order.
    pub specs: Vec<ExperimentSpec>,
    /// Phasing applied to every run.
    pub phases: Phases,
}

impl Campaign {
    /// Runs every experiment in order.
    pub fn run(&self) -> CampaignResults {
        self.run_with(|_, _| {})
    }

    /// Runs every experiment, reporting `(index, spec)` to `progress` before
    /// each run (for CLI progress output on stderr).
    pub fn run_with(&self, mut progress: impl FnMut(usize, &ExperimentSpec)) -> CampaignResults {
        let rows = self
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                progress(i, spec);
                run_spec(spec, &self.phases)
            })
            .collect();
        CampaignResults {
            name: self.name.clone(),
            rows,
        }
    }
}

/// The collected rows of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignResults {
    /// The campaign's name.
    pub name: String,
    /// One result per experiment, in execution order.
    pub rows: Vec<RunResult>,
}

impl CampaignResults {
    /// CSV emission: a header row plus one row per experiment. Deterministic
    /// byte-for-byte for a fixed campaign and seed.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "protocol,network,fault,n,f,m,batch_size,crypto,workers,seed,throughput_tps,tail_tps,\
             latency_mean_ms,latency_p50_ms,latency_p99_ms,committed_txns,committed_batches,\
             messages,bytes,events,suspicions,view_changes,handoffs,peak_retained,\
             adversary_strikes,trace_fingerprint\n",
        );
        for row in &self.rows {
            let s = &row.spec;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{:.1},{:.1},{:.3},{:.3},{:.3},{},{},{},{},{},{},{},{},{},{},{:016x}",
                s.protocol.name(),
                s.network.name(),
                s.fault.name(),
                s.n,
                s.system().f,
                s.m,
                s.batch_size,
                s.crypto_name(),
                s.workers,
                s.seed,
                row.throughput_tps,
                row.tail_tps,
                row.latency_mean_ms,
                row.latency_p50_ms,
                row.latency_p99_ms,
                row.committed_transactions,
                row.committed_batches,
                row.messages_delivered,
                row.bytes_delivered,
                row.events_processed,
                row.suspicions,
                row.view_changes,
                row.client_handoffs,
                row.peak_retained_log,
                row.adversary_strikes,
                row.trace_fingerprint,
            );
        }
        out
    }

    /// The stable row key used to label telemetry/flight JSONL lines.
    fn row_label(spec: &ExperimentSpec) -> String {
        format!(
            "{}/{}/{}/n{}/m{}/seed{}",
            spec.protocol.name(),
            spec.network.name(),
            spec.fault.name(),
            spec.n,
            spec.m,
            spec.seed,
        )
    }

    /// JSONL emission of every row's registry snapshot: one line per metric,
    /// each labeled with the row key. Deterministic for a fixed campaign and
    /// seed (`docs/OBSERVABILITY.md` documents the schema).
    pub fn to_telemetry_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&row.telemetry.to_jsonl(&Self::row_label(&row.spec)));
        }
        out
    }

    /// JSONL emission of every row's flight-recorder trace: one line per
    /// structured event, each labeled with the row key and timestamped in
    /// virtual nanoseconds.
    pub fn to_flight_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&rcc_telemetry::dump_jsonl(
                &row.flight,
                &Self::row_label(&row.spec),
            ));
        }
        out
    }

    /// Markdown emission: a compact table with the headline columns.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### Campaign `{}`\n", self.name);
        out.push_str(
            "| protocol | network | fault | n | m | batch | crypto | workers | throughput (txn/s) | tail (txn/s) | p50 (ms) | p99 (ms) | view changes | hand-offs | peak log |\n\
             |---|---|---|---:|---:|---:|---|---:|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for row in &self.rows {
            let s = &row.spec;
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {} | {:.0} | {:.0} | {:.1} | {:.1} | {} | {} | {} |",
                s.protocol.name(),
                s.network.name(),
                s.fault.name(),
                s.n,
                s.m,
                s.batch_size,
                s.crypto_name(),
                s.workers,
                row.throughput_tps,
                row.tail_tps,
                row.latency_p50_ms,
                row.latency_p99_ms,
                row.view_changes,
                row.client_handoffs,
                row.peak_retained_log,
            );
        }
        out
    }
}

/// The CI smoke campaign: a 4-replica deployment, a handful of rows, a few
/// virtual seconds each — seconds of wall-clock time, enough to catch "the
/// simulator broke" and gross performance regressions.
pub fn smoke_campaign(seed: u64) -> Campaign {
    let spec = |protocol, m, fault| ExperimentSpec {
        protocol,
        network: NetworkKind::Wan,
        fault,
        n: 4,
        m,
        batch_size: 100,
        crypto: CryptoMode::Mac,
        seed,
        workers: 16,
    };
    Campaign {
        name: "smoke".into(),
        specs: vec![
            spec(ProtocolKind::Pbft, 1, FaultScenario::None),
            spec(ProtocolKind::RccPbft, 1, FaultScenario::None),
            spec(ProtocolKind::RccPbft, 4, FaultScenario::None),
            spec(ProtocolKind::RccPbft, 4, FaultScenario::CrashReplica),
        ],
        phases: Phases::smoke(),
    }
}

/// The Fig. 7-shaped sweep: RCC-over-PBFT under the WAN model, m ∈ {1, 2, 4}
/// × n ∈ {4, 16, 32}, MAC authentication, failure-free. Columns `m` and
/// `throughput_tps` correspond to Fig. 7-left's x- and y-axes.
pub fn fig7_campaign(seed: u64) -> Campaign {
    let mut specs = Vec::new();
    for n in [4usize, 16, 32] {
        for m in [1usize, 2, 4] {
            specs.push(ExperimentSpec {
                protocol: ProtocolKind::RccPbft,
                network: NetworkKind::Wan,
                fault: FaultScenario::None,
                n,
                m,
                batch_size: 100,
                crypto: CryptoMode::Mac,
                seed,
                workers: 16,
            });
        }
    }
    Campaign {
        name: "fig7".into(),
        specs,
        phases: Phases::standard(),
    }
}

/// The Fig. 7-right-shaped sweep: standalone PBFT on a LAN under the three
/// authentication modes (no authentication, MACs, ED25519 signatures), each
/// crossed with verify/execute worker-pool widths {1, 2, 4, 8}. Column
/// `crypto` is Fig. 7-right's x-axis; the `workers` column exposes how much
/// of the authentication cost the staged pipeline parallelizes away (CI's
/// `--pipeline-gate` holds mac-mode throughput at 8 workers above the
/// 1-worker row).
pub fn fig7_auth_campaign(seed: u64) -> Campaign {
    let mut specs = Vec::new();
    for crypto in [CryptoMode::None, CryptoMode::Mac, CryptoMode::PublicKey] {
        for workers in [1u32, 2, 4, 8] {
            specs.push(ExperimentSpec {
                protocol: ProtocolKind::Pbft,
                network: NetworkKind::Lan,
                fault: FaultScenario::None,
                n: 16,
                m: 1,
                batch_size: 100,
                crypto,
                seed,
                workers,
            });
        }
    }
    Campaign {
        name: "fig7-auth".into(),
        specs,
        phases: Phases::standard(),
    }
}

/// The Fig. 8-shaped scalability sweep: RCC with `m = n` against standalone
/// PBFT, WAN, n ∈ {4, 16, 32, 64, 91} (the paper's deployment sizes).
/// Expensive: the n = 91 rows simulate tens of millions of events.
pub fn fig8_campaign(seed: u64) -> Campaign {
    let mut specs = Vec::new();
    for n in [4usize, 16, 32, 64, 91] {
        specs.push(ExperimentSpec {
            protocol: ProtocolKind::RccPbft,
            network: NetworkKind::Wan,
            fault: FaultScenario::None,
            n,
            m: n,
            batch_size: 100,
            crypto: CryptoMode::Mac,
            seed,
            workers: 16,
        });
        specs.push(ExperimentSpec {
            protocol: ProtocolKind::Pbft,
            network: NetworkKind::Wan,
            fault: FaultScenario::None,
            n,
            m: 1,
            batch_size: 100,
            crypto: CryptoMode::Mac,
            seed,
            workers: 16,
        });
    }
    Campaign {
        name: "fig8".into(),
        specs,
        phases: Phases::standard(),
    }
}

/// The fault-tolerance sweep (Fig. 10's spirit): RCC n = 4, m = 4 under each
/// fault scenario, so throughput under failures has a tracked baseline.
pub fn faults_campaign(seed: u64) -> Campaign {
    let specs = [
        FaultScenario::None,
        FaultScenario::CrashReplica,
        FaultScenario::SilenceCoordinator,
        FaultScenario::ThrottleCoordinator,
    ]
    .into_iter()
    .map(|fault| ExperimentSpec {
        protocol: ProtocolKind::RccPbft,
        network: NetworkKind::Wan,
        fault,
        n: 4,
        m: 4,
        batch_size: 100,
        crypto: CryptoMode::Mac,
        seed,
        workers: 16,
    })
    .collect();
    Campaign {
        name: "faults".into(),
        specs,
        phases: Phases {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(1500),
            cooldown: Duration::from_millis(100),
        },
    }
}

/// The recovery campaign: the crash → view-change → reassignment →
/// recovered-throughput timeline (Section III-E made measurable). RCC n = 4,
/// m = 4 with a failure-free baseline, a crashed coordinator, and a
/// Byzantine-silent coordinator, each run with a measurement window long
/// enough that the tail third is pure post-recovery steady state. Before the
/// §III-E client assignment landed, the crash row's tail sat at the catch-up
/// no-op cadence (~9 k tps vs a ~102 k baseline — the worst number in the
/// PR 2 baseline table); the `tail_tps` column is where the fix shows, and
/// CI holds it above a sanity floor via `rcc-bench --floor`.
pub fn recovery_campaign(seed: u64) -> Campaign {
    let specs = [
        FaultScenario::None,
        FaultScenario::CrashReplica,
        FaultScenario::SilenceCoordinator,
    ]
    .into_iter()
    .map(|fault| ExperimentSpec {
        protocol: ProtocolKind::RccPbft,
        network: NetworkKind::Wan,
        fault,
        n: 4,
        m: 4,
        batch_size: 100,
        crypto: CryptoMode::Mac,
        seed,
        workers: 16,
    })
    .collect();
    Campaign {
        name: "recovery".into(),
        specs,
        phases: Phases::recovery(),
    }
}

/// The long-horizon campaign: §III-D checkpointing/GC made measurable. RCC
/// n = 4, m = 4 (WAN, MACs) over a **60 s** measurement window — ~40× the
/// `recovery` preset, a horizon that was documented as unusable before
/// checkpointing landed ("keep horizons in the seconds") — with a
/// failure-free row and a crash-*and-recovery* row: the crashed coordinator
/// rejoins 20 s in, long after the survivors pruned its missing rounds, and
/// must catch up through a checkpoint transfer. Read `peak_retained` against
/// `committed_batches`: bounded by O(`checkpoint_interval` × m) versus
/// hundreds of thousands of batches committed. CI gates both directions:
/// `--floor` on the tail throughput (the recovered steady state must match
/// the short `recovery` preset) and `--max-retained` on the memory column.
pub fn long_horizon_campaign(seed: u64) -> Campaign {
    let specs = [FaultScenario::None, FaultScenario::CrashRecoverReplica]
        .into_iter()
        .map(|fault| ExperimentSpec {
            protocol: ProtocolKind::RccPbft,
            network: NetworkKind::Wan,
            fault,
            n: 4,
            m: 4,
            batch_size: 100,
            crypto: CryptoMode::Mac,
            seed,
            workers: 16,
        })
        .collect();
    Campaign {
        name: "long-horizon".into(),
        specs,
        phases: Phases {
            warmup: Duration::from_millis(500),
            measure: Duration::from_secs(60),
            cooldown: Duration::from_millis(500),
        },
    }
}

/// The adversarial chaos campaign: RCC n = 4, m = 4 (WAN, MACs) under the
/// six chaos scenario classes plus a failure-free baseline, each with the
/// long `recovery` phasing so the fault (or the adversary's strike budget)
/// has played out before the tail third is measured. Safety is asserted
/// unconditionally — `simulate_rcc_over_pbft` panics on divergent release
/// orders — and liveness is gated per scenario class: CI runs
/// `rcc-bench --preset chaos --floor TPS`, and each row's gate is
/// `TPS × fault.liveness_floor_factor()` ("degrades gracefully", not
/// "unaffected"). Every row is bit-deterministic per seed: the
/// `trace_fingerprint` column is the witness.
pub fn chaos_campaign(seed: u64) -> Campaign {
    let specs = [
        FaultScenario::None,
        FaultScenario::AdaptiveKill,
        FaultScenario::AdaptiveSilence,
        FaultScenario::ClockSkew,
        FaultScenario::AsymmetricPartition,
        FaultScenario::Slowloris,
        FaultScenario::WireMangle,
    ]
    .into_iter()
    .map(|fault| ExperimentSpec {
        protocol: ProtocolKind::RccPbft,
        network: NetworkKind::Wan,
        fault,
        n: 4,
        m: 4,
        batch_size: 100,
        crypto: CryptoMode::Mac,
        seed,
        workers: 16,
    })
    .collect();
    Campaign {
        name: "chaos".into(),
        specs,
        phases: Phases::recovery(),
    }
}

/// Looks a campaign preset up by name.
pub fn campaign_by_name(name: &str, seed: u64) -> Option<Campaign> {
    match name {
        "smoke" => Some(smoke_campaign(seed)),
        "fig7" => Some(fig7_campaign(seed)),
        "fig7-auth" => Some(fig7_auth_campaign(seed)),
        "fig8" => Some(fig8_campaign(seed)),
        "faults" => Some(faults_campaign(seed)),
        "recovery" => Some(recovery_campaign(seed)),
        "long-horizon" => Some(long_horizon_campaign(seed)),
        "chaos" => Some(chaos_campaign(seed)),
        _ => None,
    }
}

/// The names accepted by [`campaign_by_name`].
pub const CAMPAIGN_NAMES: [&str; 8] = [
    "smoke",
    "fig7",
    "fig7-auth",
    "fig8",
    "faults",
    "recovery",
    "long-horizon",
    "chaos",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign(seed: u64) -> Campaign {
        let spec = |m| ExperimentSpec {
            protocol: ProtocolKind::RccPbft,
            network: NetworkKind::Wan,
            fault: FaultScenario::None,
            n: 4,
            m,
            batch_size: 10,
            crypto: CryptoMode::Mac,
            seed,
            workers: 16,
        };
        Campaign {
            name: "tiny".into(),
            specs: vec![spec(1), spec(4)],
            phases: Phases {
                warmup: Duration::from_millis(150),
                measure: Duration::from_millis(500),
                cooldown: Duration::from_millis(50),
            },
        }
    }

    #[test]
    fn campaign_output_is_deterministic() {
        let a = tiny_campaign(3).run();
        let b = tiny_campaign(3).run();
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.to_markdown(), b.to_markdown());
    }

    #[test]
    fn csv_has_header_plus_one_row_per_spec() {
        let results = tiny_campaign(3).run();
        let csv = results.to_csv();
        assert_eq!(csv.lines().count(), 1 + results.rows.len());
        assert!(csv.starts_with("protocol,network,fault,n,f,m,"));
        for row in &results.rows {
            assert!(row.committed_transactions > 0, "rows must make progress");
        }
    }

    #[test]
    fn markdown_table_contains_every_protocol_row() {
        let md = tiny_campaign(3).run().to_markdown();
        assert!(md.contains("| rcc-pbft | wan |"));
        assert!(md.starts_with("### Campaign `tiny`"));
    }

    #[test]
    fn pbft_rows_force_single_instance() {
        let spec = ExperimentSpec {
            protocol: ProtocolKind::Pbft,
            network: NetworkKind::Wan,
            fault: FaultScenario::None,
            n: 4,
            m: 4,
            batch_size: 10,
            crypto: CryptoMode::Mac,
            seed: 1,
            workers: 16,
        };
        let phases = Phases {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(300),
            cooldown: Duration::from_millis(50),
        };
        let row = run_spec(&spec, &phases);
        assert_eq!(row.spec.m, 1);
        assert!(row.committed_transactions > 0);
    }

    #[test]
    fn chaos_preset_covers_every_scenario_class() {
        let campaign = chaos_campaign(1);
        let names: Vec<&str> = campaign.specs.iter().map(|s| s.fault.name()).collect();
        for required in [
            "adaptive-kill",
            "adaptive-silence",
            "clock-skew",
            "asymmetric-partition",
            "slowloris",
            "wire-mangle",
        ] {
            assert!(names.contains(&required), "chaos preset missing {required}");
        }
    }

    #[test]
    fn adaptive_scenarios_carry_an_adversary_schedule() {
        let start = Time::ZERO + Duration::from_millis(200);
        assert!(FaultScenario::AdaptiveKill.adversary(start).is_some());
        assert!(FaultScenario::AdaptiveSilence.adversary(start).is_some());
        assert!(FaultScenario::WireMangle.adversary(start).is_none());
        assert!(FaultScenario::None.adversary(start).is_none());
    }

    #[test]
    fn liveness_floor_factors_scale_down_only() {
        let scenarios = [
            FaultScenario::None,
            FaultScenario::CrashReplica,
            FaultScenario::SilenceCoordinator,
            FaultScenario::ThrottleCoordinator,
            FaultScenario::CrashRecoverReplica,
            FaultScenario::AdaptiveKill,
            FaultScenario::AdaptiveSilence,
            FaultScenario::ClockSkew,
            FaultScenario::AsymmetricPartition,
            FaultScenario::Slowloris,
            FaultScenario::WireMangle,
        ];
        for fault in scenarios {
            let factor = fault.liveness_floor_factor();
            assert!(
                factor > 0.0 && factor <= 1.0,
                "{}: factor {factor} outside (0, 1]",
                fault.name()
            );
        }
        // The classic scenarios keep the full floor — the chaos factors
        // must never weaken the existing CI gates.
        assert_eq!(FaultScenario::None.liveness_floor_factor(), 1.0);
        assert_eq!(
            FaultScenario::CrashRecoverReplica.liveness_floor_factor(),
            1.0
        );
    }

    #[test]
    fn adaptive_kill_lands_strikes_and_keeps_committing() {
        let spec = ExperimentSpec {
            protocol: ProtocolKind::RccPbft,
            network: NetworkKind::Wan,
            fault: FaultScenario::AdaptiveKill,
            n: 4,
            m: 4,
            batch_size: 10,
            crypto: CryptoMode::Mac,
            seed: 7,
            workers: 16,
        };
        let phases = Phases {
            warmup: Duration::from_millis(150),
            measure: Duration::from_millis(1_000),
            cooldown: Duration::from_millis(50),
        };
        let row = run_spec(&spec, &phases);
        assert!(row.adversary_strikes > 0, "the adversary never struck");
        assert!(
            row.committed_transactions > 0,
            "chaos run stopped committing"
        );
    }

    #[test]
    fn fig7_auth_sweeps_every_crypto_mode_by_worker_width() {
        let campaign = fig7_auth_campaign(1);
        assert_eq!(campaign.specs.len(), 12, "3 crypto modes × 4 pool widths");
        for crypto in [CryptoMode::None, CryptoMode::Mac, CryptoMode::PublicKey] {
            for workers in [1u32, 2, 4, 8] {
                assert!(
                    campaign
                        .specs
                        .iter()
                        .any(|s| s.crypto == crypto && s.workers == workers),
                    "missing {crypto:?} × {workers} workers"
                );
            }
        }
    }

    #[test]
    fn widening_the_worker_pool_raises_mac_throughput() {
        // The pipeline acceptance property at unit-test scale: with MAC
        // batch verification dominating the CPU, a wider verify/execute
        // pool must raise committed throughput.
        let spec = |workers| ExperimentSpec {
            protocol: ProtocolKind::Pbft,
            network: NetworkKind::Lan,
            fault: FaultScenario::None,
            n: 4,
            m: 1,
            batch_size: 100,
            crypto: CryptoMode::Mac,
            seed: 3,
            workers,
        };
        let phases = Phases {
            warmup: Duration::from_millis(150),
            measure: Duration::from_millis(400),
            cooldown: Duration::from_millis(50),
        };
        let narrow = run_spec(&spec(1), &phases);
        let wide = run_spec(&spec(8), &phases);
        assert!(
            wide.throughput_tps > narrow.throughput_tps,
            "8 workers ({:.0} tps) should beat 1 worker ({:.0} tps)",
            wide.throughput_tps,
            narrow.throughput_tps
        );
    }

    #[test]
    fn presets_resolve_by_name() {
        for name in CAMPAIGN_NAMES {
            let campaign = campaign_by_name(name, 1).expect(name);
            assert!(!campaign.specs.is_empty());
            assert_eq!(campaign.name, name);
        }
        assert!(campaign_by_name("nope", 1).is_none());
    }
}
