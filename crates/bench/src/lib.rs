//! placeholder (implementation pending)
