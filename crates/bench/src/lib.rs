//! Benchmark harness — **placeholder, not yet implemented**.
//!
//! Intended scope: reproducible experiment campaigns over the simulator (and
//! later the real transport), mirroring the paper's evaluation (Section V):
//!
//! * experiment matrices: protocol × deployment size × batch size ×
//!   authentication mode × fault scenario, each a
//!   [`rcc_common::SystemConfig`] plus a fault script;
//! * warm-up/measure/cool-down phasing with throughput and latency
//!   percentiles collected via [`rcc_common::metrics`];
//! * CSV/Markdown result emission suitable for regenerating the paper's
//!   figures (Fig. 7 and Fig. 8);
//! * regression gates so CI can flag performance changes in the protocol
//!   hot paths.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
