//! A miniature experiment campaign over the deterministic harness: how does
//! the number of concurrent instances `m` change message cost and
//! throughput-per-round?
//!
//! The real campaign runner belongs to `rcc-sim` (the discrete-event
//! simulator with latency/bandwidth/CPU models — see its crate docs; not yet
//! implemented). Until it lands, this example runs the same sweep on the
//! logical harness: for m ∈ {1, 2, 4} it drives a 4-replica RCC-over-PBFT
//! cluster for a fixed number of rounds and reports batches released and
//! messages delivered.
//!
//! Run with: `cargo run --example simulator_campaign`

use rcc::common::{Batch, ClientId, ClientRequest, ReplicaId, SystemConfig, Transaction};
use rcc::core::RccReplica;
use rcc::protocols::harness::Cluster;
use rcc::protocols::ByzantineCommitAlgorithm;

fn main() {
    let n = 4;
    let rounds = 4u64;
    println!("harness campaign: n = {n}, {rounds} rounds, m ∈ {{1, 2, 4}}\n");
    println!(
        "{:>3} {:>10} {:>12} {:>14}",
        "m", "batches", "messages", "msgs/batch"
    );

    for m in [1usize, 2, 4] {
        let config = SystemConfig::new(n).with_instances(m);
        let mut cluster = Cluster::new(
            (0..n as u32)
                .map(|r| RccReplica::over_pbft(config.clone(), ReplicaId(r)))
                .collect(),
        );
        for round in 0..rounds {
            for primary in 0..m as u64 {
                let batch = Batch::new(vec![ClientRequest::new(
                    ClientId(primary),
                    round,
                    Transaction::transfer(primary as u32, (primary as u32 + 1) % n as u32, 10, 1),
                )]);
                cluster.propose(ReplicaId(primary as u32), batch);
            }
            cluster.run_to_quiescence();
        }
        let released = cluster.node(ReplicaId(0)).committed_prefix();
        let messages = cluster.delivered_messages();
        // Sanity: all replicas agree regardless of m.
        let reference = cluster.node(ReplicaId(0)).execution_digests();
        for r in 1..n as u32 {
            assert_eq!(cluster.node(ReplicaId(r)).execution_digests(), reference);
        }
        println!(
            "{:>3} {:>10} {:>12} {:>14.1}",
            m,
            released,
            messages,
            messages as f64 / released as f64
        );
    }
    println!(
        "\nPer-batch message cost is flat in m (quadratic in n), while per-round\n\
         throughput scales with m — the RCC premise: more proposals in flight for\n\
         the same per-batch coordination cost. Wall-clock claims need rcc-sim."
    );
}
