//! A Fig. 7-shaped campaign on the `rcc-sim` discrete-event simulator: how
//! does committed throughput scale with the number of concurrent instances
//! `m` across deployment sizes, under the paper's WAN link model?
//!
//! Runs RCC-over-PBFT for m ∈ {1, 2, 4} × n ∈ {4, 16, 32} with 100-txn
//! batches and MAC authentication, measured over a warm-up/measure/cool-down
//! window, and prints both the Markdown table and the CSV rows. The run is
//! fully deterministic: two invocations produce byte-identical output.
//!
//! Run with: `cargo run --release --example simulator_campaign`
//!
//! For more campaigns (authentication modes, fault scenarios, Fig. 8
//! scalability) use the `rcc-bench` binary; `docs/EVALUATION.md` documents
//! every knob and the mapping back to the paper's figures.

use rcc::bench::fig7_campaign;
use rcc::common::config::DEFAULT_SEED;

fn main() {
    let campaign = fig7_campaign(DEFAULT_SEED);
    let total = campaign.specs.len();
    let results = campaign.run_with(|i, spec| {
        eprintln!(
            "[{}/{total}] simulating {} {} n={} m={} …",
            i + 1,
            spec.protocol.name(),
            spec.network.name(),
            spec.n,
            spec.m,
        );
    });

    // Fail loudly if the simulator is broken — this example must never fall
    // back to a weaker driver or quietly print an empty table.
    for row in &results.rows {
        assert!(
            row.committed_transactions > 0,
            "simulator made no progress for n={} m={}: the discrete-event \
             simulator is broken (no silent fallback exists)",
            row.spec.n,
            row.spec.m,
        );
    }

    println!("{}", results.to_markdown());
    println!("```csv\n{}```", results.to_csv());
    println!(
        "OK: {} experiments committed {} transactions in total",
        results.rows.len(),
        results
            .rows
            .iter()
            .map(|r| r.committed_transactions)
            .sum::<u64>()
    );
    println!(
        "\nReading the table: throughput is flat in n but scales with m — a single\n\
         WAN primary is latency-bound (pipeline window ÷ round-trip), so RCC's m\n\
         concurrent primaries multiply committed throughput, which is Fig. 7's\n\
         premise. Latency stays ~3 one-way WAN hops regardless of m."
    );
}
