//! Quickstart: a 4-replica, 4-instance RCC-over-PBFT cluster, end to end.
//!
//! Every replica coordinates one PBFT instance and proposes client batches
//! concurrently; the deterministic harness delivers all messages to
//! quiescence; and every replica releases the same batches in the same
//! execution order — which this example prints and asserts.
//!
//! Run with: `cargo run --example quickstart`

use rcc::common::{Batch, ClientId, ClientRequest, ReplicaId, SystemConfig, Transaction};
use rcc::core::RccReplica;
use rcc::protocols::harness::Cluster;
use rcc::protocols::ByzantineCommitAlgorithm;

fn main() {
    let n = 4;
    let rounds = 3u64;
    let config = SystemConfig::new(n); // n replicas, m = n concurrent instances
    println!(
        "RCC quickstart: n = {}, f = {}, m = {} concurrent PBFT instances\n",
        config.n, config.f, config.instances
    );

    let mut cluster = Cluster::new(
        (0..n as u32)
            .map(|r| RccReplica::over_pbft(config.clone(), ReplicaId(r)))
            .collect(),
    );

    // Drive `rounds` rounds: in each, every coordinator proposes one batch of
    // client transfers. In a deployment the client assignment policy routes
    // transactions to instances; here each pseudo-client `c` sticks to the
    // instance of replica `c mod n`.
    for round in 0..rounds {
        for primary in 0..n as u64 {
            let client = ClientId(primary);
            let batch = Batch::new(vec![ClientRequest::new(
                client,
                round,
                Transaction::transfer(primary as u32, (primary as u32 + 1) % n as u32, 10, 1),
            )]);
            cluster.propose(ReplicaId(primary as u32), batch);
        }
        let delivered = cluster.run_to_quiescence();
        println!("round {round}: quiesced after {delivered} messages");
    }

    // Every replica must have released the same execution order.
    println!("\nexecution order (instance@round → digest):");
    let reference = cluster.node(ReplicaId(0)).execution_log().to_vec();
    for released in &reference {
        for batch in &released.batches {
            println!(
                "  {:>6} → {}",
                batch.id.to_string(),
                batch.digest.short_hex()
            );
        }
    }
    for r in 0..n as u32 {
        let node = cluster.node(ReplicaId(r));
        assert_eq!(
            node.execution_log(),
            &reference[..],
            "replica {r} diverged from the common execution order"
        );
        println!(
            "replica {r}: released {} batches over {} rounds — order identical",
            node.committed_prefix(),
            node.orderer().next_round()
        );
    }
    println!(
        "\nOK: {} batches executed in the same order on all {} replicas.",
        reference
            .iter()
            .map(|round| round.batches.len())
            .sum::<usize>(),
        n
    );
}
