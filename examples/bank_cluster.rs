fn main() {}
