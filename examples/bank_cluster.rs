//! Bank cluster: RCC ordering feeding the deterministic execution engine.
//!
//! Conditional transfers (Example IV.1 of the paper) are proposed through
//! concurrent consensus instances; every replica executes the released
//! rounds through its own `ExecutionEngine` and ends with identical account
//! balances, ledgers, and state fingerprints.
//!
//! Run with: `cargo run --example bank_cluster`

use rcc::common::{Batch, ClientId, ClientRequest, ReplicaId, SystemConfig, Transaction};
use rcc::core::RccReplica;
use rcc::execution::ExecutionEngine;
use rcc::protocols::harness::Cluster;

fn main() {
    let n = 4;
    let config = SystemConfig::new(n);
    let balances = [(0u32, 800i64), (1, 300), (2, 100), (3, 500)];

    let mut cluster = Cluster::new(
        (0..n as u32)
            .map(|r| RccReplica::over_pbft(config.clone(), ReplicaId(r)))
            .collect(),
    );

    // Each coordinator proposes transfers from "its" account.
    for round in 0..2u64 {
        for primary in 0..n as u32 {
            let from = primary;
            let to = (primary + 1) % n as u32;
            let amount = 25 * (primary as i64 + 1);
            let batch = Batch::new(vec![ClientRequest::new(
                ClientId(primary as u64),
                round,
                Transaction::transfer(from, to, 50, amount),
            )]);
            cluster.propose(ReplicaId(primary), batch);
        }
        cluster.run_to_quiescence();
    }

    // Every replica executes its own released order against its own state.
    let mut fingerprints = Vec::new();
    for r in 0..n as u32 {
        let mut engine = ExecutionEngine::with_accounts(ReplicaId(r), &balances);
        for released in cluster.node(ReplicaId(r)).execution_log() {
            let ordered: Vec<_> = released
                .batches
                .iter()
                .map(|b| (b.id, b.batch.clone()))
                .collect();
            engine.execute_round(released.round, &ordered);
        }
        println!(
            "replica {r}: balances = [{}, {}, {}, {}], ledger head = {}, fingerprint = {:016x}",
            engine.accounts().balance(0),
            engine.accounts().balance(1),
            engine.accounts().balance(2),
            engine.accounts().balance(3),
            engine.ledger().head_digest().short_hex(),
            engine.state_fingerprint(),
        );
        engine
            .ledger()
            .verify()
            .expect("hash-chained ledger verifies");
        fingerprints.push((engine.state_fingerprint(), engine.ledger().head_digest()));
    }
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "all replicas must converge on the same state and ledger"
    );
    println!("\nOK: identical state fingerprints and ledger heads on all {n} replicas.");
}
