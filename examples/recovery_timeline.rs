//! The Fig. 10-style recovery timeline: what happens to throughput when a
//! coordinator crashes, and how the Section III-E client assignment brings
//! it back.
//!
//! Runs RCC (n = 4, m = 4, WAN, MACs) twice — failure-free and with the
//! coordinator of instance 3 crashing at t = 250 ms — and prints the
//! throughput time series side by side, plus the recovery milestones
//! (suspicions, view change, client hand-offs) and the post-recovery tail
//! comparison. Deterministic: the output is byte-identical across runs.
//!
//! ```sh
//! cargo run --release --example recovery_timeline
//! ```

use rcc_common::{Duration, InstanceId, ReplicaId, SystemConfig, Time};
use rcc_core::RccOverPbft;
use rcc_protocols::ByzantineCommitAlgorithm;
use rcc_sim::{FaultScript, NetworkModel, SimConfig, SimReport, Simulation};

const HORIZON_MS: u64 = 2500;
const CRASH_AT_MS: u64 = 250;
const TAIL_FROM_MS: u64 = 1700;

fn run(faults: FaultScript) -> (SimReport, Vec<RccOverPbft>) {
    let system = SystemConfig::new(4).with_instances(4).with_batch_size(100);
    let config = SimConfig::new(
        system.clone(),
        NetworkModel::wan(),
        Duration::from_millis(HORIZON_MS),
    )
    .with_measure_window(Time::from_millis(200), Time::from_millis(HORIZON_MS))
    .with_faults(faults);
    Simulation::new(config, |replica| {
        RccOverPbft::over_pbft(system.clone(), replica)
    })
    .run_full()
}

fn main() {
    let crashed = ReplicaId(3);
    let (healthy, _) = run(FaultScript::none());
    let (report, nodes) = run(FaultScript::crash_at(
        Time::from_millis(CRASH_AT_MS),
        crashed,
    ));

    println!("# Recovery timeline: coordinator of instance 3 crashes at {CRASH_AT_MS} ms\n");
    println!(
        "{:>8}  {:>16}  {:>16}",
        "t (ms)", "healthy (tps)", "crash (tps)"
    );
    let healthy_series = healthy.throughput.time_series();
    let crash_series = report.throughput.time_series();
    // 100 ms buckets out of the 50 ms meter: average pairs for readability.
    let mut t = 0;
    while t + 1 < crash_series.len() {
        let avg = |series: &[(Time, f64)]| {
            let a = series.get(t).map(|p| p.1).unwrap_or(0.0);
            let b = series.get(t + 1).map(|p| p.1).unwrap_or(0.0);
            (a + b) / 2.0
        };
        println!(
            "{:>8}  {:>16.0}  {:>16.0}",
            crash_series[t].0.as_nanos() / 1_000_000,
            avg(&healthy_series),
            avg(&crash_series),
        );
        t += 2;
    }

    let tail = |r: &SimReport| {
        r.throughput_over(
            Time::from_millis(TAIL_FROM_MS),
            Time::from_millis(HORIZON_MS),
        )
    };
    println!("\n## Milestones");
    println!("suspicions raised:   {}", report.suspicions);
    println!("view changes:        {}", report.view_changes);
    println!("client hand-offs:    {}", report.client_handoffs);
    let observer = &nodes[0];
    println!(
        "instance 3:          view {} under {} ({} rounds of progress demonstrated)",
        observer.instance(InstanceId(3)).view(),
        observer.instance(InstanceId(3)).primary(),
        observer.progress_in_view(InstanceId(3)),
    );
    let log = observer.instance_commit_log(InstanceId(3));
    let noops = log.values().filter(|s| s.batch.is_noop()).count();
    println!(
        "instance 3 slots:    {} committed, {} no-op filler, {} client batches",
        log.len(),
        noops,
        log.len() - noops
    );

    println!("\n## Post-recovery steady state (t ≥ {TAIL_FROM_MS} ms)");
    let recovered = tail(&report);
    let baseline = tail(&healthy);
    println!("healthy baseline:    {baseline:>9.0} tps");
    println!("after recovery:      {recovered:>9.0} tps");
    println!(
        "recovered fraction:  {:>8.1}%",
        100.0 * recovered / baseline
    );

    // This example doubles as an executable regression check for the
    // Section III-E client assignment: before it existed, the recovered
    // fraction sat below 10 % (the catch-up no-op cadence).
    assert!(
        recovered > baseline / 2.0,
        "post-recovery throughput collapsed: {recovered:.0} vs baseline {baseline:.0} tps"
    );
    assert!(report.client_handoffs >= 2, "σ-spaced hand-offs missing");
    println!("\nOK: post-recovery throughput is within 2x of the failure-free baseline.");
}
