//! The ordering attack of Section IV (Example IV.1 / Fig. 6), and why RCC's
//! agreed cross-instance order neutralises the *inconsistency* half of it.
//!
//! Two conditional transfers — T1 = transfer(Alice → Bob, if > 500, 200) and
//! T2 = transfer(Bob → Eve, if > 400, 300) — produce different final
//! balances depending on execution order. A malicious single primary can
//! pick whichever order benefits it. This example first shows the divergent
//! outcomes, then runs both transactions through an RCC cluster to show
//! every replica applies the *same* order, so no replica-side disagreement
//! is possible — and finally enables the Section-IV permutation
//! (`SystemConfig::unpredictable_ordering`), under which the within-round
//! order is `h = digest(S) mod (m! − 1)` over the round's certified digests:
//! still identical on every replica, but unknowable to any coordinator
//! before the whole round is fixed.
//!
//! Run with: `cargo run --example ordering_attack`

use rcc::common::{Batch, ClientId, ClientRequest, ReplicaId, SystemConfig, Transaction};
use rcc::core::RccReplica;
use rcc::execution::ExecutionEngine;
use rcc::protocols::harness::Cluster;

const ALICE: u32 = 0;
const BOB: u32 = 1;
const EVE: u32 = 2;

fn t1() -> ClientRequest {
    ClientRequest::new(ClientId(1), 0, Transaction::transfer(ALICE, BOB, 500, 200))
}

fn t2() -> ClientRequest {
    ClientRequest::new(ClientId(2), 0, Transaction::transfer(BOB, EVE, 400, 300))
}

fn balances(engine: &ExecutionEngine) -> (i64, i64, i64) {
    (
        engine.accounts().balance(ALICE),
        engine.accounts().balance(BOB),
        engine.accounts().balance(EVE),
    )
}

fn main() {
    let initial = [(ALICE, 800i64), (BOB, 300), (EVE, 100)];
    println!("initial balances: Alice 800, Bob 300, Eve 100 (Fig. 6)\n");

    // A single malicious primary can choose either order.
    use rcc::common::{BatchId, InstanceId};
    let id = |i: u32| BatchId {
        instance: InstanceId(i),
        round: 0,
    };
    let mut first = ExecutionEngine::with_accounts(ReplicaId(0), &initial);
    first.execute_round(
        0,
        &[
            (id(0), Batch::new(vec![t1()])),
            (id(1), Batch::new(vec![t2()])),
        ],
    );
    let mut second = ExecutionEngine::with_accounts(ReplicaId(0), &initial);
    second.execute_round(
        0,
        &[
            (id(1), Batch::new(vec![t2()])),
            (id(0), Batch::new(vec![t1()])),
        ],
    );
    println!("T1 before T2 → Alice/Bob/Eve = {:?}", balances(&first));
    println!("T2 before T1 → Alice/Bob/Eve = {:?}", balances(&second));
    assert_ne!(
        balances(&first),
        balances(&second),
        "order changes the outcome"
    );

    // Under RCC, T1 and T2 go through different concurrent instances and
    // every replica applies the deterministic cross-instance order.
    let n = 4;
    let config = SystemConfig::new(n);
    let mut cluster = Cluster::new(
        (0..n as u32)
            .map(|r| RccReplica::over_pbft(config.clone(), ReplicaId(r)))
            .collect(),
    );
    cluster.propose(ReplicaId(0), Batch::new(vec![t1()]));
    cluster.propose(ReplicaId(1), Batch::new(vec![t2()]));
    // Instances 2 and 3 have no client load this round and contribute no-op
    // filler so the round can release (Section III-E).
    cluster.propose(ReplicaId(2), Batch::noop(InstanceId(2), 0));
    cluster.propose(ReplicaId(3), Batch::noop(InstanceId(3), 0));
    cluster.run_to_quiescence();

    let mut outcomes = Vec::new();
    for r in 0..n as u32 {
        let mut engine = ExecutionEngine::with_accounts(ReplicaId(r), &initial);
        for released in cluster.node(ReplicaId(r)).execution_log() {
            let ordered: Vec<_> = released
                .batches
                .iter()
                .map(|b| (b.id, b.batch.clone()))
                .collect();
            engine.execute_round(released.round, &ordered);
        }
        outcomes.push(balances(&engine));
    }
    println!(
        "\nRCC replicas all applied the same order → {:?}",
        outcomes[0]
    );
    assert!(
        outcomes.windows(2).all(|w| w[0] == w[1]),
        "replicas must agree"
    );

    // With the Section-IV permutation enabled, the within-round order is a
    // digest-derived permutation: still bit-identical across replicas (it is
    // a pure function of the round's certified digests), but no coordinator
    // can predict its batch's slot before the round is fixed.
    let config = SystemConfig::new(n).with_unpredictable_ordering(true);
    let mut permuted = Cluster::new(
        (0..n as u32)
            .map(|r| RccReplica::over_pbft(config.clone(), ReplicaId(r)))
            .collect(),
    );
    permuted.propose(ReplicaId(0), Batch::new(vec![t1()]));
    permuted.propose(ReplicaId(1), Batch::new(vec![t2()]));
    permuted.propose(ReplicaId(2), Batch::noop(InstanceId(2), 0));
    permuted.propose(ReplicaId(3), Batch::noop(InstanceId(3), 0));
    permuted.run_to_quiescence();
    let reference: Vec<_> = permuted
        .node(ReplicaId(0))
        .execution_log()
        .iter()
        .flat_map(|round| round.batches.iter().map(|b| b.id))
        .collect();
    for r in 1..n as u32 {
        let order: Vec<_> = permuted
            .node(ReplicaId(r))
            .execution_log()
            .iter()
            .flat_map(|round| round.batches.iter().map(|b| b.id))
            .collect();
        assert_eq!(order, reference, "permuted order is agreed by replica {r}");
    }
    println!(
        "§IV permutation on → round 0 executes as {:?} on every replica",
        reference.iter().map(|id| id.instance.0).collect::<Vec<_>>()
    );
    println!("OK: no replica-side divergence, with and without the §IV permutation.");
}
