//! Offline stand-in for the `hmac` crate: real HMAC (RFC 2104) over the
//! vendored SHA-256.
//!
//! Exposes the subset of the RustCrypto `hmac`/`crypto-mac` API the workspace
//! uses: `Hmac::<Sha256>::new_from_slice`, `update`, `finalize().into_bytes()`
//! and `verify_slice` via the [`Mac`] trait. Verified against RFC 4231 test
//! vectors in the test module below.

#![forbid(unsafe_code)]

use sha2::{Digest as _, Sha256};
use std::marker::PhantomData;

/// SHA-256 block size in bytes.
const BLOCK: usize = 64;

/// Error returned when a key cannot be used (never produced here: HMAC
/// accepts keys of any length, but the type is part of the API).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidLength;

impl std::fmt::Display for InvalidLength {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid key length")
    }
}

/// Error returned when MAC verification fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MacError;

impl std::fmt::Display for MacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MAC verification failed")
    }
}

/// The finalized MAC output. `into_bytes` yields a [`sha2::Output`] (not a
/// bare `[u8; 32]`) so call sites written against the real RustCrypto API —
/// `mac.finalize().into_bytes().into()` — compile unchanged against this
/// stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Output(sha2::Output);

impl Output {
    /// Returns the raw tag bytes.
    pub fn into_bytes(self) -> sha2::Output {
        self.0
    }
}

/// The message-authentication-code trait (subset of RustCrypto's `Mac`).
pub trait Mac: Sized {
    /// Creates a MAC instance keyed with `key`.
    fn new_from_slice(key: &[u8]) -> Result<Self, InvalidLength>;
    /// Feeds more message input.
    fn update(&mut self, data: &[u8]);
    /// Consumes the MAC and produces the tag.
    fn finalize(self) -> Output;
    /// Consumes the MAC and verifies the tag in constant time.
    fn verify_slice(self, tag: &[u8]) -> Result<(), MacError>;
}

/// HMAC over a hash function `D` (only `Hmac<Sha256>` is implemented by this
/// stand-in).
#[derive(Clone, Debug)]
pub struct Hmac<D> {
    inner: Sha256,
    opad_key: [u8; BLOCK],
    _hash: PhantomData<D>,
}

impl Mac for Hmac<Sha256> {
    fn new_from_slice(key: &[u8]) -> Result<Self, InvalidLength> {
        let mut block_key = [0u8; BLOCK];
        if key.len() > BLOCK {
            let mut h = Sha256::new();
            h.update(key);
            let digest: [u8; 32] = h.finalize().into();
            block_key[..32].copy_from_slice(&digest);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(ipad);
        Ok(Hmac {
            inner,
            opad_key: opad,
            _hash: PhantomData,
        })
    }

    fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    fn finalize(self) -> Output {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(self.opad_key);
        outer.update(inner_digest);
        Output(outer.finalize())
    }

    fn verify_slice(self, tag: &[u8]) -> Result<(), MacError> {
        let expected: [u8; 32] = self.finalize().into_bytes().into();
        if expected.len() != tag.len() {
            return Err(MacError);
        }
        // Constant-time comparison.
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff == 0 {
            Ok(())
        } else {
            Err(MacError)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn hmac(key: &[u8], data: &[u8]) -> String {
        let mut mac = Hmac::<Sha256>::new_from_slice(key).unwrap();
        mac.update(data);
        let tag: [u8; 32] = mac.finalize().into_bytes().into();
        hex(&tag)
    }

    #[test]
    fn rfc4231_case_1() {
        assert_eq!(
            hmac(&[0x0b; 20], b"Hi There"),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hmac(b"Jefe", b"what do ya want for nothing?"),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // 131-byte key exercises the hash-the-key path.
        assert_eq!(
            hmac(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            ),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_valid_and_rejects_invalid() {
        let mut mac = Hmac::<Sha256>::new_from_slice(b"key").unwrap();
        mac.update(b"msg");
        let tag: [u8; 32] = mac.clone().finalize().into_bytes().into();
        assert!(mac.clone().verify_slice(&tag).is_ok());
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(mac.verify_slice(&bad).is_err());
    }
}
