//! Offline no-op stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on most message and
//! configuration types so that a real serialization layer can be dropped in
//! later, but nothing actually serializes yet: all messages travel as
//! in-memory values through the deterministic harness and (eventually) the
//! discrete-event simulator. This facade keeps those derives compiling
//! without a registry:
//!
//! * the derive macros (re-exported from the stand-in `serde_derive`) emit no
//!   code;
//! * [`Serialize`] and [`Deserialize`] are satisfied by blanket
//!   implementations, so generic bounds like `M: Serialize` hold trivially;
//! * [`Serializer`]/[`Deserializer`] exist so hand-written `with`-style
//!   helper modules type-check. Calling [`Deserialize::deserialize`] always
//!   fails at runtime with a descriptive error.
//!
//! See `third_party/README.md` for the swap-back procedure.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization-side error machinery.
pub mod de {
    use std::fmt::Display;

    /// The error trait deserializer errors must implement.
    pub trait Error: Sized + std::fmt::Debug + Display {
        /// Builds an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Serialization-side error machinery.
pub mod ser {
    use std::fmt::Display;

    /// The error trait serializer errors must implement.
    pub trait Error: Sized + std::fmt::Debug + Display {
        /// Builds an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A data-format serializer (stub: only the byte-slice entry point the
/// workspace uses).
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type of the format.
    type Error: ser::Error;

    /// Serializes a raw byte slice.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
}

/// A data-format deserializer (stub: carries only the error type).
pub trait Deserializer<'de>: Sized {
    /// Error type of the format.
    type Error: de::Error;
}

/// Marker trait for serializable types. Blanket-implemented for every type;
/// the real trait is restored together with the real `serde`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Trait for deserializable types. Blanket-implemented for every sized type;
/// the provided method always fails because the stand-in cannot construct
/// arbitrary values.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer. Always fails in the
    /// offline stand-in.
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Err(de::Error::custom(
            "serde stand-in: deserialization is not available in offline builds",
        ))
    }
}

impl<'de, T: Sized> Deserialize<'de> for T {}
