//! Offline stand-in for `ed25519-dalek`. **NOT CRYPTOGRAPHICALLY SECURE.**
//!
//! The build environment has no registry access, so this crate mirrors the
//! `ed25519-dalek` v2 API surface the workspace uses (`SigningKey`,
//! `VerifyingKey`, `Signature`, the `Signer`/`Verifier` traits) with a
//! deterministic hash-based tag scheme instead of real Ed25519:
//!
//! * `public = SHA256("rcc-stub-ed25519/pk" ‖ seed)`
//! * `sig    = SHA256("rcc-stub-ed25519/s1" ‖ public ‖ msg) ‖
//!             SHA256("rcc-stub-ed25519/s2" ‖ public ‖ msg)`
//!
//! Verification recomputes the tag from the *public key* alone, which gives
//! the properties the deterministic simulation and tests rely on — stable
//! round-trips, tamper detection, wrong-signer rejection, seed-deterministic
//! keys — but means **anyone who knows a public key can forge signatures**.
//! The real `ed25519-dalek` must be restored before anything built on this
//! workspace crosses a trust boundary. See `third_party/README.md`.

#![forbid(unsafe_code)]

use sha2::{Digest as _, Sha256};

/// Error produced by key parsing or signature verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SignatureError;

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "signature error")
    }
}

impl std::error::Error for SignatureError {}

fn tagged_hash(tag: &str, parts: &[&[u8]]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(tag.as_bytes());
    for part in parts {
        h.update(part);
    }
    h.finalize().into()
}

fn tag_for(public: &[u8; 32], message: &[u8]) -> [u8; 64] {
    let a = tagged_hash("rcc-stub-ed25519/s1", &[public, message]);
    let b = tagged_hash("rcc-stub-ed25519/s2", &[public, message]);
    let mut out = [0u8; 64];
    out[..32].copy_from_slice(&a);
    out[32..].copy_from_slice(&b);
    out
}

/// A signing key derived deterministically from a 32-byte seed.
#[derive(Clone, Debug)]
pub struct SigningKey {
    public: [u8; 32],
}

impl SigningKey {
    /// Derives the key pair from a 32-byte seed.
    pub fn from_bytes(seed: &[u8; 32]) -> Self {
        SigningKey {
            public: tagged_hash("rcc-stub-ed25519/pk", &[seed]),
        }
    }

    /// The corresponding verifying (public) key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey { bytes: self.public }
    }
}

/// A verifying (public) key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyingKey {
    bytes: [u8; 32],
}

impl VerifyingKey {
    /// Parses a verifying key from raw bytes.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<Self, SignatureError> {
        Ok(VerifyingKey { bytes: *bytes })
    }

    /// Raw key bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.bytes
    }
}

/// A 64-byte signature value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Signature {
    bytes: [u8; 64],
}

impl Signature {
    /// Builds a signature from raw bytes.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        Signature { bytes: *bytes }
    }

    /// Raw signature bytes.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.bytes
    }
}

/// Types that can sign messages.
pub trait Signer<S> {
    /// Signs `message`.
    fn sign(&self, message: &[u8]) -> S;
}

/// Types that can verify signatures.
pub trait Verifier<S> {
    /// Verifies `signature` over `message`.
    fn verify(&self, message: &[u8], signature: &S) -> Result<(), SignatureError>;
}

impl Signer<Signature> for SigningKey {
    fn sign(&self, message: &[u8]) -> Signature {
        Signature {
            bytes: tag_for(&self.public, message),
        }
    }
}

impl Verifier<Signature> for VerifyingKey {
    fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        if tag_for(&self.bytes, message) == signature.bytes {
            Ok(())
        } else {
            Err(SignatureError)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_rejections() {
        let a = SigningKey::from_bytes(&[1u8; 32]);
        let b = SigningKey::from_bytes(&[2u8; 32]);
        let sig = a.sign(b"message");
        assert!(a.verifying_key().verify(b"message", &sig).is_ok());
        assert!(a.verifying_key().verify(b"messagE", &sig).is_err());
        assert!(b.verifying_key().verify(b"message", &sig).is_err());
    }

    #[test]
    fn keys_are_seed_deterministic() {
        let a = SigningKey::from_bytes(&[7u8; 32]);
        let b = SigningKey::from_bytes(&[7u8; 32]);
        assert_eq!(a.verifying_key(), b.verifying_key());
    }
}
