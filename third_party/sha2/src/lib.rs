//! Offline stand-in for the `sha2` crate: a from-scratch SHA-256.
//!
//! This is a *real* implementation of SHA-256 per FIPS 180-4 (not a mock),
//! exposing the subset of the RustCrypto `sha2`/`digest` API the workspace
//! uses: `Sha256::new()`, `update`, and `finalize` via the [`Digest`] trait,
//! with `finalize` returning the raw `[u8; 32]` output. Verified against the
//! standard NIST test vectors in the test module below.

#![forbid(unsafe_code)]

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// The digest output. A distinct type (rather than a bare `[u8; 32]`) so
/// that call sites written against the real RustCrypto API — where
/// `finalize()` yields a `GenericArray` converted with `.into()` — compile
/// unchanged against this stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Output([u8; 32]);

impl From<Output> for [u8; 32] {
    fn from(output: Output) -> Self {
        output.0
    }
}

impl AsRef<[u8]> for Output {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// The streaming-digest trait (subset of RustCrypto's `digest::Digest`).
pub trait Digest: Sized {
    /// Creates a fresh hasher.
    fn new() -> Self;
    /// Feeds more input into the hasher.
    fn update(&mut self, data: impl AsRef<[u8]>);
    /// Consumes the hasher and returns the digest bytes.
    fn finalize(self) -> Output;
}

/// A streaming SHA-256 hasher.
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    total_bytes: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            total_bytes: 0,
        }
    }
}

impl Sha256 {
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl Digest for Sha256 {
    fn new() -> Self {
        Sha256::default()
    }

    fn update(&mut self, data: impl AsRef<[u8]>) {
        let mut input = data.as_ref();
        self.total_bytes = self.total_bytes.wrapping_add(input.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= 64 {
            let block: [u8; 64] = input[..64].try_into().expect("64-byte block");
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    fn finalize(mut self) -> Output {
        let bit_len = self.total_bytes.wrapping_mul(8);
        // Append the 0x80 terminator, pad with zeros to 56 mod 64, then the
        // 64-bit big-endian message length.
        self.update([0x80u8]);
        self.total_bytes = self.total_bytes.wrapping_sub(1);
        while self.buffered != 56 {
            self.update([0u8]);
            self.total_bytes = self.total_bytes.wrapping_sub(1);
        }
        self.update(bit_len.to_be_bytes());

        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        Output(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: impl AsRef<[u8]>) -> String {
        bytes.as_ref().iter().map(|b| format!("{b:02x}")).collect()
    }

    fn sha256(data: &[u8]) -> String {
        let mut h = Sha256::new();
        h.update(data);
        hex(h.finalize())
    }

    #[test]
    fn nist_vectors() {
        assert_eq!(
            sha256(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update([b'a'; 1000]);
        }
        assert_eq!(
            hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Sha256::new();
        h.update(b"hello ");
        h.update(b"world");
        let mut g = Sha256::new();
        g.update(b"hello world");
        assert_eq!(h.finalize(), g.finalize());
    }

    #[test]
    fn block_boundary_lengths() {
        // Exercise lengths around the 64-byte block and 56-byte pad
        // boundaries.
        for len in [55usize, 56, 57, 63, 64, 65, 127, 128, 129] {
            let data = vec![0xa5u8; len];
            let mut h = Sha256::new();
            h.update(&data);
            let oneshot = h.finalize();
            let mut g = Sha256::new();
            for b in &data {
                g.update([*b]);
            }
            assert_eq!(oneshot, g.finalize(), "length {len}");
        }
    }
}
