//! Offline no-op stand-in for `serde_derive`.
//!
//! The derive macros accept any input (including `#[serde(...)]` helper
//! attributes, which are registered but never inspected) and emit no code at
//! all. The matching `serde` facade crate provides blanket implementations of
//! the `Serialize`/`Deserialize` traits, so deriving them is purely
//! decorative until the real crates are restored. See
//! `third_party/README.md`.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
